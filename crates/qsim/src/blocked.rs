//! Cache-blocked (chunked) statevector — the Doi & Horii technique that
//! Qiskit `aer` uses to scale statevector simulation across the nodes of a
//! supercomputer, re-created in-process.
//!
//! The `2^n` amplitudes are split into `2^(n−c)` chunks of `2^c`. A gate on
//! qubit `q < c` touches each chunk independently (perfectly parallel, and
//! the chunk fits in cache). A gate on `q ≥ c` pairs chunk `k` with chunk
//! `k XOR 2^(q−c)` — on a distributed machine that pair lives on two MPI
//! ranks and requires a send/receive of both chunks. [`CommStats`] counts
//! those exchanges and their byte volume, which is what the paper's
//! scaling efficiency (§4, 33 qubits on 512 nodes) is governed by.
//!
//! Diagonal gates — the *entire QAOA cost layer* — never pair chunks
//! because each amplitude's phase depends only on its own index. This is
//! why QAOA simulates so well under cache blocking and is the property the
//! sim-scaling experiment demonstrates.

use crate::complex::C64;
use crate::gates::{self, Mat2};
use crate::measure;
use crate::SimError;
use rayon::prelude::*;

/// Communication/operation counters for one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Chunk-local kernel invocations (no communication).
    pub local_chunk_ops: u64,
    /// Chunk-pair operations (each ≙ one MPI send/receive pair).
    pub pair_exchanges: u64,
    /// Bytes that would cross the network: 2 × chunk bytes per exchange.
    pub bytes_exchanged: u64,
}

impl CommStats {
    /// Reset all counters.
    pub fn reset(&mut self) {
        *self = CommStats::default();
    }
}

/// Raw-pointer handle into the chunk table, shared across the pair
/// fan-out of [`BlockedState::apply_1q`]. Sound because every task
/// dereferences a disjoint pair of chunk indices (see the SAFETY comment
/// at the use site).
struct ChunkPtr(*mut Vec<C64>);

// SAFETY: the pointer is only dereferenced at indices proven disjoint
// across tasks, and the pointee outlives the parallel scope.
unsafe impl Send for ChunkPtr {}
unsafe impl Sync for ChunkPtr {}

/// Chunked statevector with communication accounting.
#[derive(Debug, Clone)]
pub struct BlockedState {
    chunks: Vec<Vec<C64>>,
    num_qubits: usize,
    chunk_qubits: usize,
    stats: CommStats,
}

impl BlockedState {
    /// `|0…0⟩` on `n` qubits stored as chunks of `2^chunk_qubits`
    /// amplitudes. `chunk_qubits` must not exceed `n`.
    pub fn zero_state(n: usize, chunk_qubits: usize) -> Result<Self, SimError> {
        if n > crate::state::MAX_QUBITS {
            return Err(SimError::TooManyQubits { requested: n, max: crate::state::MAX_QUBITS });
        }
        let c = chunk_qubits.min(n);
        let chunk_len = 1usize << c;
        let num_chunks = 1usize << (n - c);
        let mut chunks = vec![vec![C64::ZERO; chunk_len]; num_chunks];
        chunks[0][0] = C64::ONE;
        Ok(BlockedState { chunks, num_qubits: n, chunk_qubits: c, stats: CommStats::default() })
    }

    /// Uniform superposition `H^{⊗n}|0…0⟩`.
    pub fn plus_state(n: usize, chunk_qubits: usize) -> Result<Self, SimError> {
        let mut s = Self::zero_state(n, chunk_qubits)?;
        let amp = C64::real(1.0 / ((1u64 << n) as f64).sqrt());
        for chunk in &mut s.chunks {
            chunk.fill(amp);
        }
        Ok(s)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// log2 of chunk length.
    pub fn chunk_qubits(&self) -> usize {
        self.chunk_qubits
    }

    /// Number of chunks (≙ simulated MPI ranks).
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Communication statistics accumulated so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Reset communication statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn check_qubit(&self, q: usize) -> Result<(), SimError> {
        if q >= self.num_qubits {
            Err(SimError::QubitOutOfRange { qubit: q, num_qubits: self.num_qubits })
        } else {
            Ok(())
        }
    }

    /// Apply a single-qubit unitary to qubit `q`.
    pub fn apply_1q(&mut self, q: usize, m: &Mat2) -> Result<(), SimError> {
        self.check_qubit(q)?;
        if q < self.chunk_qubits {
            // chunk-local: each cache-sized chunk is one coarse work item
            self.chunks
                .par_iter_mut()
                .with_min_len(1)
                .for_each(|chunk| gates::apply_1q(chunk, q, m));
            self.stats.local_chunk_ops += self.chunks.len() as u64;
        } else {
            // chunk-pair: groups of 2^(b+1) chunks pair first/second halves.
            // Fan a single parallel level directly over the pair indices —
            // group/offset arithmetic recovers each (lo, hi) pair, so no
            // Vec of split borrows is allocated per call, and the flat
            // fan-out still avoids the nested shape that degrades to one
            // task for the top qubit.
            let b = q - self.chunk_qubits;
            let half = 1usize << b;
            let chunk_bytes = (self.chunks[0].len() * std::mem::size_of::<C64>()) as u64;
            let pairs = self.chunks.len() / 2;
            let base = ChunkPtr(self.chunks.as_mut_ptr());
            let base = &base; // capture the Sync wrapper, not the raw field
            (0..pairs).into_par_iter().with_min_len(1).for_each(|p| {
                let lo = (p / half) * (half << 1) + (p % half);
                let hi = lo + half;
                // SAFETY: `lo`/`hi` are distinct (they differ in bit `b`)
                // and the {lo, hi} sets of different `p` are disjoint —
                // `p` ↦ (group, offset) is a bijection onto the lo side —
                // so each chunk is mutably borrowed by exactly one task,
                // and `base` outlives the parallel scope.
                unsafe { gates::apply_1q_paired(&mut *base.0.add(lo), &mut *base.0.add(hi), m) };
            });
            self.stats.pair_exchanges += pairs as u64;
            self.stats.bytes_exchanged += pairs as u64 * 2 * chunk_bytes;
        }
        Ok(())
    }

    /// Hadamard.
    pub fn h(&mut self, q: usize) -> Result<(), SimError> {
        self.apply_1q(q, &gates::h_matrix())
    }

    /// `RX(θ)` — the QAOA mixer gate.
    pub fn rx(&mut self, q: usize, theta: f64) -> Result<(), SimError> {
        self.apply_1q(q, &gates::rx_matrix(theta))
    }

    /// `RZ(θ)` — diagonal, always chunk-local.
    pub fn rz(&mut self, q: usize, theta: f64) -> Result<(), SimError> {
        self.check_qubit(q)?;
        self.diag(|amps, base| gates::apply_rz(amps, base, q, theta));
        Ok(())
    }

    /// `RZZ(θ)` — diagonal, always chunk-local *regardless of qubit
    /// indices*: the entire QAOA cost layer costs zero communication.
    pub fn rzz(&mut self, qa: usize, qb: usize, theta: f64) -> Result<(), SimError> {
        self.check_qubit(qa)?;
        self.check_qubit(qb)?;
        if qa == qb {
            return Err(SimError::DuplicateQubit { qubit: qa });
        }
        self.diag(|amps, base| gates::apply_rzz(amps, base, qa, qb, theta));
        Ok(())
    }

    /// Apply a fused run of diagonal gates (see [`gates::DiagTerm`]) —
    /// one chunk-local pass over the whole state and **zero** pair
    /// exchanges, exactly like every other diagonal gate: the phase of an
    /// amplitude depends only on its own global index, which the chunk
    /// base encodes.
    pub fn apply_diag_block(
        &mut self,
        phase0: f64,
        terms: &[gates::DiagTerm],
    ) -> Result<(), SimError> {
        let dim = 1u64 << self.num_qubits;
        for t in terms {
            if t.mask >= dim {
                return Err(SimError::QubitOutOfRange {
                    qubit: (63 - t.mask.leading_zeros()) as usize,
                    num_qubits: self.num_qubits,
                });
            }
        }
        let plan = gates::DiagPlan::new(phase0, terms);
        self.diag(|amps, base| plan.apply(amps, base));
        Ok(())
    }

    /// Apply a wall of independent single-qubit unitaries (distinct
    /// qubits), returning the number of whole-state passes performed.
    ///
    /// Chunk-local gates (`q < chunk_qubits`) are applied back-to-back on
    /// each chunk while it is cache-resident — one pass for the whole
    /// local sub-wall. Gates on chunk-crossing qubits go through the
    /// per-gate pairing path (each ≙ one MPI exchange round) and are
    /// counted in [`CommStats`] as usual.
    pub fn apply_1q_wall(&mut self, mats: &[(usize, Mat2)]) -> Result<usize, SimError> {
        for &(q, _) in mats {
            self.check_qubit(q)?;
        }
        if mats.is_empty() {
            return Ok(0);
        }
        let (local, high): (Vec<_>, Vec<_>) =
            mats.iter().copied().partition(|&(q, _)| q < self.chunk_qubits);
        let mut passes = 0;
        if !local.is_empty() {
            self.chunks
                .par_iter_mut()
                .with_min_len(1)
                .for_each(|chunk| gates::apply_1q_wall(chunk, &local));
            self.stats.local_chunk_ops += self.chunks.len() as u64;
            passes += 1;
        }
        for (q, m) in high {
            self.apply_1q(q, &m)?;
            passes += 1;
        }
        Ok(passes)
    }

    fn diag(&mut self, f: impl Fn(&mut [C64], u64) + Sync) {
        let cq = self.chunk_qubits;
        self.chunks.par_iter_mut().with_min_len(1).enumerate().for_each(|(k, chunk)| {
            f(chunk, (k as u64) << cq);
        });
        self.stats.local_chunk_ops += self.chunks.len() as u64;
    }

    /// Squared norm.
    pub fn norm_sqr(&self) -> f64 {
        // REDUCTION: fixed 2^chunk_qubits amplitude blocks (with_min_len(1)
        // = one leaf per block); inner sums are sequential per block and the
        // outer sum combines in chunk-index order.
        self.chunks
            .par_iter()
            .with_min_len(1)
            .map(|c| c.iter().map(|a| a.norm_sqr()).sum::<f64>())
            .sum()
    }

    /// Probability of global basis state `i`.
    pub fn probability(&self, i: u64) -> f64 {
        let chunk = (i >> self.chunk_qubits) as usize;
        let off = (i & ((1u64 << self.chunk_qubits) - 1)) as usize;
        self.chunks[chunk][off].norm_sqr()
    }

    /// Exact expectation of a diagonal observable `Σ_z |a_z|² f(z)`.
    pub fn expectation_diagonal(&self, f: impl Fn(u64) -> f64 + Sync) -> f64 {
        let cq = self.chunk_qubits;
        // REDUCTION: fixed 2^chunk_qubits amplitude blocks, one leaf per
        // block; per-block sums combined in chunk-index order.
        self.chunks
            .par_iter()
            .with_min_len(1)
            .enumerate()
            .map(|(k, chunk)| {
                let base = (k as u64) << cq;
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, a)| a.norm_sqr() * f(base + i as u64))
                    .sum::<f64>()
            })
            .sum()
    }

    /// Multinomial shot sampling (matches
    /// [`crate::measure::sample_counts`] on the flattened state).
    pub fn sample_counts(&self, shots: usize, seed: u64) -> Vec<(u64, u32)> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut points: Vec<f64> = (0..shots).map(|_| rng.gen::<f64>()).collect();
        // INVARIANT: rng.gen::<f64>() yields finite values in [0, 1),
        // so partial_cmp never sees a NaN.
        points.sort_by(|a, b| a.partial_cmp(b).expect("uniforms are finite"));
        measure::sweep_sorted_points(
            self.chunks.iter().flat_map(|c| c.iter().map(|a| a.norm_sqr())),
            &points,
        )
    }

    /// The `k` most probable basis states, highest first.
    pub fn top_k_amplitudes(&self, k: usize) -> Vec<(u64, f64)> {
        let mut carry = Vec::new();
        for (kk, chunk) in self.chunks.iter().enumerate() {
            let base = (kk as u64) << self.chunk_qubits;
            carry = measure::top_k_from_probs(chunk.iter().map(|a| a.norm_sqr()), base, k, carry);
        }
        carry
    }

    /// Flatten into a [`crate::StateVector`] (test/diagnostic use).
    pub fn to_statevector(&self) -> crate::StateVector {
        let mut amps = Vec::with_capacity(1usize << self.num_qubits);
        for chunk in &self.chunks {
            amps.extend_from_slice(chunk);
        }
        crate::StateVector::from_amplitudes(amps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;

    const EPS: f64 = 1e-10;

    /// Run the same random circuit on flat and blocked storage and compare
    /// every amplitude.
    fn cross_check(n: usize, chunk_qubits: usize) {
        let mut flat = StateVector::plus_state(n);
        let mut blk = BlockedState::plus_state(n, chunk_qubits).unwrap();
        let ops: Vec<(usize, usize, f64)> =
            (0..3 * n).map(|i| (i % n, (i * 7 + 3) % n, 0.1 + 0.07 * i as f64)).collect();
        for &(qa, qb, th) in &ops {
            flat.rx(qa, th);
            blk.rx(qa, th).unwrap();
            if qa != qb {
                flat.rzz(qa, qb, th * 1.3);
                blk.rzz(qa, qb, th * 1.3).unwrap();
            }
            flat.rz(qb, -th);
            blk.rz(qb, -th).unwrap();
        }
        let flat2 = blk.to_statevector();
        for (a, b) in flat.amplitudes().iter().zip(flat2.amplitudes()) {
            assert!((*a - *b).norm_sqr() < EPS);
        }
    }

    #[test]
    fn blocked_matches_flat_small_chunks() {
        cross_check(6, 2);
    }

    #[test]
    fn blocked_matches_flat_single_chunk() {
        cross_check(5, 5);
    }

    #[test]
    fn blocked_matches_flat_one_amp_chunks() {
        cross_check(4, 0);
    }

    #[test]
    fn high_qubit_gate_counts_exchanges() {
        let mut s = BlockedState::plus_state(6, 3).unwrap();
        s.rx(1, 0.3).unwrap(); // local
        assert_eq!(s.stats().pair_exchanges, 0);
        s.rx(5, 0.3).unwrap(); // top qubit: 4 chunk pairs
        assert_eq!(s.stats().pair_exchanges, 4);
        let chunk_bytes = (1usize << 3) * std::mem::size_of::<C64>();
        assert_eq!(s.stats().bytes_exchanged, 4 * 2 * chunk_bytes as u64);
    }

    #[test]
    fn cost_layer_is_communication_free() {
        let mut s = BlockedState::plus_state(8, 4).unwrap();
        // rzz across the chunk boundary — still no exchanges
        s.rzz(0, 7, 0.9).unwrap();
        s.rzz(6, 7, 0.4).unwrap();
        assert_eq!(s.stats().pair_exchanges, 0);
        assert!(s.stats().local_chunk_ops > 0);
    }

    #[test]
    fn norm_preserved() {
        let mut s = BlockedState::plus_state(7, 3).unwrap();
        s.h(6).unwrap();
        s.rx(2, 1.0).unwrap();
        s.rzz(1, 6, 0.5).unwrap();
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
    }

    #[test]
    fn sampling_matches_flat_sampling() {
        let mut blk = BlockedState::plus_state(5, 2).unwrap();
        blk.rx(3, 0.8).unwrap();
        let flat = blk.to_statevector();
        assert_eq!(
            blk.sample_counts(2048, 5),
            crate::measure::sample_counts(flat.amplitudes(), 2048, 5)
        );
    }

    #[test]
    fn top_k_matches_flat() {
        let mut blk = BlockedState::plus_state(6, 3).unwrap();
        blk.ry_test(0.7);
        let flat = blk.to_statevector();
        assert_eq!(blk.top_k_amplitudes(5), crate::measure::top_k_amplitudes(flat.amplitudes(), 5));
    }

    impl BlockedState {
        /// test helper: a non-uniform deterministic state
        fn ry_test(&mut self, theta: f64) {
            let m = crate::gates::ry_matrix(theta);
            for q in 0..self.num_qubits {
                self.apply_1q(q % self.num_qubits, &m).unwrap();
            }
            self.rzz(0, self.num_qubits - 1, 0.3).unwrap();
        }
    }

    #[test]
    fn fused_entry_points_match_flat() {
        use crate::gates::{h_matrix, rx_matrix, DiagTerm};
        let n = 6;
        let terms = [DiagTerm { mask: 0b11, coef: -0.4 }, DiagTerm { mask: 0b101000, coef: 0.7 }];
        let wall = [(0usize, h_matrix()), (3, rx_matrix(0.4)), (5, rx_matrix(-0.9))];
        for cq in [0, 2, 6] {
            let mut blk = BlockedState::plus_state(n, cq).unwrap();
            let mut flat = StateVector::plus_state(n);
            blk.apply_diag_block(0.3, &terms).unwrap();
            flat.apply_diag_block(0.3, &terms);
            // the fused diagonal sweep is communication-free like any
            // other diagonal gate
            assert_eq!(blk.stats().pair_exchanges, 0);
            blk.apply_1q_wall(&wall).unwrap();
            flat.apply_1q_wall(&wall);
            let flat2 = blk.to_statevector();
            for (a, b) in flat.amplitudes().iter().zip(flat2.amplitudes()) {
                assert!((*a - *b).norm_sqr() < EPS, "chunk_qubits={cq}");
            }
        }
    }

    #[test]
    fn diag_block_mask_out_of_range_rejected() {
        let mut s = BlockedState::plus_state(3, 1).unwrap();
        let bad = [crate::gates::DiagTerm { mask: 1 << 3, coef: 0.1 }];
        assert!(matches!(
            s.apply_diag_block(0.0, &bad),
            Err(SimError::QubitOutOfRange { qubit: 3, num_qubits: 3 })
        ));
    }

    #[test]
    fn duplicate_qubit_rejected() {
        let mut s = BlockedState::plus_state(3, 1).unwrap();
        assert!(matches!(s.rzz(1, 1, 0.5), Err(SimError::DuplicateQubit { qubit: 1 })));
    }

    #[test]
    fn probability_indexing() {
        let s = BlockedState::zero_state(6, 2).unwrap();
        assert!((s.probability(0) - 1.0).abs() < EPS);
        assert!(s.probability(17) < EPS);
    }
}
