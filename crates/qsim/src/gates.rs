//! Gate kernels over raw amplitude slices.
//!
//! Every kernel works on a `&mut [C64]` whose length is a power of two, so
//! the flat [`crate::StateVector`] and the chunk-pair paths of
//! [`crate::BlockedState`] share the exact same code. Kernels are
//! sequential; parallelism is layered on top by the storage engines
//! (rayon over aligned blocks / chunks), which keeps the hot loops simple
//! enough for LLVM to vectorize.
//!
//! Conventions (standard little-endian, qubit `q` ↦ bit `q` of the basis
//! index):
//!
//! * `RX(θ) = exp(−iθX/2)`
//! * `RZ(θ) = exp(−iθZ/2) = diag(e^{−iθ/2}, e^{+iθ/2})`
//! * `RZZ(θ) = exp(−iθ(Z⊗Z)/2)` — diagonal, phase `e^{−iθ/2}` when the two
//!   bits agree and `e^{+iθ/2}` when they differ.

use crate::complex::C64;

/// A 2×2 complex matrix in row-major order: `[m00, m01, m10, m11]`.
pub type Mat2 = [C64; 4];

/// Hadamard matrix.
pub fn h_matrix() -> Mat2 {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    [C64::real(s), C64::real(s), C64::real(s), C64::real(-s)]
}

/// Pauli-X matrix.
pub fn x_matrix() -> Mat2 {
    [C64::ZERO, C64::ONE, C64::ONE, C64::ZERO]
}

/// Pauli-Y matrix.
pub fn y_matrix() -> Mat2 {
    [C64::ZERO, -C64::I, C64::I, C64::ZERO]
}

/// Pauli-Z matrix.
pub fn z_matrix() -> Mat2 {
    [C64::ONE, C64::ZERO, C64::ZERO, -C64::ONE]
}

/// `RX(θ) = exp(−iθX/2)`.
pub fn rx_matrix(theta: f64) -> Mat2 {
    let (s, c) = (theta / 2.0).sin_cos();
    [C64::real(c), C64::new(0.0, -s), C64::new(0.0, -s), C64::real(c)]
}

/// `RY(θ) = exp(−iθY/2)`.
pub fn ry_matrix(theta: f64) -> Mat2 {
    let (s, c) = (theta / 2.0).sin_cos();
    [C64::real(c), C64::real(-s), C64::real(s), C64::real(c)]
}

/// `RZ(θ) = exp(−iθZ/2)`.
pub fn rz_matrix(theta: f64) -> Mat2 {
    [C64::cis(-theta / 2.0), C64::ZERO, C64::ZERO, C64::cis(theta / 2.0)]
}

/// Multiply two 2×2 matrices: `a · b`.
pub fn mat_mul(a: &Mat2, b: &Mat2) -> Mat2 {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

/// Whether a matrix is (numerically) unitary — used by debug assertions and
/// the circuit-synthesis validator.
pub fn is_unitary(m: &Mat2, tol: f64) -> bool {
    // rows of m times conjugate-transpose columns must give identity
    let dot = |r0: C64, r1: C64, c0: C64, c1: C64| r0 * c0.conj() + r1 * c1.conj();
    let e00 = dot(m[0], m[1], m[0], m[1]);
    let e01 = dot(m[0], m[1], m[2], m[3]);
    let e11 = dot(m[2], m[3], m[2], m[3]);
    (e00 - C64::ONE).norm_sqr() < tol && e01.norm_sqr() < tol && (e11 - C64::ONE).norm_sqr() < tol
}

/// Apply a single-qubit gate to qubit `q` of an amplitude slice.
///
/// `amps.len()` must be a power of two and `2^q < amps.len()`.
pub fn apply_1q(amps: &mut [C64], q: usize, m: &Mat2) {
    let n = amps.len();
    let stride = 1usize << q;
    debug_assert!(n.is_power_of_two() && stride < n);
    let (m00, m01, m10, m11) = (m[0], m[1], m[2], m[3]);
    let block = stride << 1;
    let mut base = 0;
    while base < n {
        for i in base..base + stride {
            let a = amps[i];
            let b = amps[i + stride];
            amps[i] = m00 * a + m01 * b;
            amps[i + stride] = m10 * a + m11 * b;
        }
        base += block;
    }
}

/// Apply a single-qubit gate across a chunk pair: `lo` holds the
/// amplitudes with the target bit 0, `hi` those with the bit 1.
///
/// This is the kernel a rank runs after an MPI exchange in the
/// cache-blocked scheme; the slices are element-aligned.
pub fn apply_1q_paired(lo: &mut [C64], hi: &mut [C64], m: &Mat2) {
    debug_assert_eq!(lo.len(), hi.len());
    let (m00, m01, m10, m11) = (m[0], m[1], m[2], m[3]);
    for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
        let (x, y) = (*a, *b);
        *a = m00 * x + m01 * y;
        *b = m10 * x + m11 * y;
    }
}

/// Apply `RZ(θ)` to qubit `q` — diagonal, so done in a single pass without
/// pairing (cheaper than the generic kernel).
pub fn apply_rz(amps: &mut [C64], base_index: u64, q: usize, theta: f64) {
    let p0 = C64::cis(-theta / 2.0);
    let p1 = C64::cis(theta / 2.0);
    apply_diag_bit(amps, base_index, q, p0, p1);
}

/// Apply `RZZ(θ)` between qubits `qa` and `qb`.
///
/// Diagonal: amplitudes where the two bits agree pick up `e^{−iθ/2}`, the
/// rest `e^{+iθ/2}`. `base_index` is the global index of `amps[0]`, which
/// lets chunk-local storage apply phases for qubits above the chunk
/// boundary without any communication — the key property of cache blocking
/// that makes the QAOA cost layer embarrassingly parallel.
pub fn apply_rzz(amps: &mut [C64], base_index: u64, qa: usize, qb: usize, theta: f64) {
    debug_assert_ne!(qa, qb);
    let same = C64::cis(-theta / 2.0);
    let diff = C64::cis(theta / 2.0);
    let ma = 1u64 << qa;
    let mb = 1u64 << qb;
    for (i, a) in amps.iter_mut().enumerate() {
        let idx = base_index + i as u64;
        let parity = ((idx & ma) != 0) ^ ((idx & mb) != 0);
        *a *= if parity { diff } else { same };
    }
}

/// Apply a controlled-Z between `qa` and `qb` (symmetric).
pub fn apply_cz(amps: &mut [C64], base_index: u64, qa: usize, qb: usize) {
    let ma = 1u64 << qa;
    let mb = 1u64 << qb;
    for (i, a) in amps.iter_mut().enumerate() {
        let idx = base_index + i as u64;
        if (idx & ma) != 0 && (idx & mb) != 0 {
            *a = -*a;
        }
    }
}

/// Apply a CNOT with control `c` and target `t` on a flat slice
/// (both qubits local). Swaps amplitude pairs where the control bit is set.
pub fn apply_cnot(amps: &mut [C64], c: usize, t: usize) {
    debug_assert_ne!(c, t);
    let n = amps.len();
    let mc = 1usize << c;
    let mt = 1usize << t;
    for i in 0..n {
        // visit each pair once: control set, target clear
        if (i & mc) != 0 && (i & mt) == 0 {
            amps.swap(i, i | mt);
        }
    }
}

/// One term of a fused diagonal phase function: contributes
/// `coef · (−1)^popcount(idx & mask)` to the phase of amplitude `idx`.
///
/// Every diagonal gate is a sum of such parity terms — `RZ(q, θ)` is
/// `(1 << q, −θ/2)`, `RZZ(a, b, θ)` is `((1<<a)|(1<<b), −θ/2)`, and `CZ`
/// decomposes into three of them plus a constant — so an arbitrary run of
/// commuting diagonal gates collapses into one term list plus a constant
/// phase, applied by [`apply_diag_terms`] in a single sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagTerm {
    /// Qubit-set mask the parity is taken over.
    pub mask: u64,
    /// Phase contribution when the parity is even; negated when odd.
    pub coef: f64,
}

/// Largest term count routed through the precomputed sign-combination
/// table in [`apply_diag_terms`]: `2^8` multipliers (4 KiB) amortize over
/// any realistic chunk while keeping the build cost negligible.
const DIAG_TABLE_MAX_TERMS: usize = 8;

/// Apply a fused run of diagonal gates in **one** sweep: amplitude `idx`
/// is multiplied by `e^{iφ(idx)}` with
/// `φ(idx) = phase0 + Σ_t coef_t · (−1)^popcount(idx & mask_t)`.
///
/// Two regimes, both chosen so the hot loop does **no** trigonometry —
/// a per-amplitude `sin_cos` (~9 ns) would hand the win right back to
/// the per-gate kernels, which multiply by precomputed constants:
///
/// * `m ≤ 8` terms: the multiplier takes only `2^m` values, one per sign
///   combination; precompute them all and reduce each amplitude to `m`
///   popcount-bit inserts plus one table lookup and complex multiply.
/// * `m > 8`: branchless phase accumulation (the parity flips the coef's
///   IEEE sign bit directly — a data-dependent branch here mispredicts
///   ~50% and dominates the sweep) and a single `cis` per amplitude,
///   amortized over the many terms.
///
/// The phase is a pure per-amplitude function of the global index (no
/// cross-amplitude reduction), and the table depends only on
/// `(phase0, terms)`, so any chunking of the state — and any placement
/// of those chunks across threads — yields bit-identical results.
/// `base_index` is the global index of `amps[0]`, exactly as in
/// [`apply_rzz`].
pub fn apply_diag_terms(amps: &mut [C64], base_index: u64, phase0: f64, terms: &[DiagTerm]) {
    if terms.len() <= DIAG_TABLE_MAX_TERMS {
        let mut table = [C64::ZERO; 1 << DIAG_TABLE_MAX_TERMS];
        for (combo, slot) in table.iter_mut().enumerate().take(1 << terms.len()) {
            let mut phi = phase0;
            for (t_i, t) in terms.iter().enumerate() {
                phi += if combo >> t_i & 1 == 0 { t.coef } else { -t.coef };
            }
            *slot = C64::cis(phi);
        }
        for (i, a) in amps.iter_mut().enumerate() {
            let idx = base_index + i as u64;
            let mut key = 0usize;
            for (t_i, t) in terms.iter().enumerate() {
                key |= (((idx & t.mask).count_ones() as usize) & 1) << t_i;
            }
            *a *= table[key];
        }
        return;
    }
    for (i, a) in amps.iter_mut().enumerate() {
        let idx = base_index + i as u64;
        let mut phi = phase0;
        for t in terms {
            // odd popcount parity negates coef: flip the IEEE sign bit
            let sign = ((idx & t.mask).count_ones() as u64 & 1) << 63;
            phi += f64::from_bits(t.coef.to_bits() ^ sign);
        }
        *a *= C64::cis(phi);
    }
}

/// Precomputed execution plan for one fused diagonal sweep — the form the
/// storage engines actually run ([`apply_diag_terms`] is the plain
/// reference kernel).
///
/// Terms are packed into groups of ≤ 8. For each group, parity extraction
/// is byte-sliced: a per-byte-position table maps each byte value of the
/// amplitude index to the 8-bit vector of term parities it contributes,
/// and the group key is the XOR of those lookups — parities add mod 2
/// across bytes. A second 256-entry table maps the key directly to a
/// pre-exponentiated complex multiplier `e^{iΣ±coef}` (`phase0` folded
/// into the first group), so the hot loop is a few byte-table lookups and
/// one complex multiply per 8 terms — no trigonometry, no popcount, no
/// per-term branch.
///
/// The plan is a pure function of `(phase0, terms)` and the per-amplitude
/// update is a pure function of the global index, so results are
/// bit-identical under any chunking of the state and any thread count.
/// Multi-group sweeps multiply per-group `cis` values instead of summing
/// phases before one `cis`, a differently-rounded (but ~1 ulp) version of
/// the naive per-term kernel — fused vs unfused equivalence is an overlap
/// check, never a bit check.
#[derive(Debug, Clone)]
pub struct DiagPlan {
    groups: Vec<DiagGroup>,
    /// Applied when there are no groups (pure global phase).
    constant: C64,
}

#[derive(Debug, Clone)]
struct DiagGroup {
    /// `(bit shift, table)`: table[byte] = parity bits of this group's
    /// terms contributed by `idx >> shift & 0xff`.
    keys: Vec<(u32, [u8; 256])>,
    /// key → `e^{i(Σ ±coef)}` over the group's terms (first group also
    /// carries `e^{i·phase0}`).
    mults: Box<[C64; 256]>,
}

impl DiagGroup {
    fn new(terms: &[DiagTerm], phase0: f64) -> Self {
        debug_assert!(terms.len() <= 8);
        let union = terms.iter().fold(0u64, |u, t| u | t.mask);
        let mut keys = Vec::new();
        for k in 0..8u32 {
            let shift = 8 * k;
            if union >> shift & 0xff == 0 {
                continue;
            }
            let mut tbl = [0u8; 256];
            for (byte, slot) in tbl.iter_mut().enumerate() {
                let bits = (byte as u64) << shift;
                for (j, t) in terms.iter().enumerate() {
                    *slot |= (((bits & t.mask).count_ones() as u8) & 1) << j;
                }
            }
            keys.push((shift, tbl));
        }
        let mut mults = Box::new([C64::ZERO; 256]);
        for combo in 0..1usize << terms.len() {
            let mut phi = phase0;
            for (j, t) in terms.iter().enumerate() {
                phi += if combo >> j & 1 == 0 { t.coef } else { -t.coef };
            }
            mults[combo] = C64::cis(phi);
        }
        DiagGroup { keys, mults }
    }

    #[inline(always)]
    fn key(&self, idx: u64) -> usize {
        let mut key = 0u8;
        for (shift, tbl) in &self.keys {
            key ^= tbl[(idx >> shift & 0xff) as usize];
        }
        key as usize
    }
}

impl DiagPlan {
    /// Build the plan for `φ(idx) = phase0 + Σ coef·(−1)^popcount(idx & mask)`.
    pub fn new(phase0: f64, terms: &[DiagTerm]) -> Self {
        let groups: Vec<DiagGroup> = terms
            .chunks(8)
            .enumerate()
            .map(|(i, chunk)| DiagGroup::new(chunk, if i == 0 { phase0 } else { 0.0 }))
            .collect();
        DiagPlan { groups, constant: C64::cis(phase0) }
    }

    /// Execute the sweep over one slice; `base_index` is the global index
    /// of `amps[0]`.
    pub fn apply(&self, amps: &mut [C64], base_index: u64) {
        match self.groups.as_slice() {
            [] => {
                let m = self.constant;
                for a in amps.iter_mut() {
                    *a *= m;
                }
            }
            [g] => {
                for (i, a) in amps.iter_mut().enumerate() {
                    *a *= g.mults[g.key(base_index + i as u64)];
                }
            }
            [first, rest @ ..] => {
                for (i, a) in amps.iter_mut().enumerate() {
                    let idx = base_index + i as u64;
                    let mut m = first.mults[first.key(idx)];
                    for g in rest {
                        m *= g.mults[g.key(idx)];
                    }
                    *a *= m;
                }
            }
        }
    }
}

/// Apply a wall of independent single-qubit gates to one slice while it is
/// cache-resident: every `(q, m)` pair must satisfy `2^(q+1) ≤ amps.len()`
/// (callers route larger-stride gates through their pairing paths). The
/// storage engines call this once per cache-sized chunk, so the whole wall
/// costs a single memory sweep instead of one per gate.
pub fn apply_1q_wall(amps: &mut [C64], mats: &[(usize, Mat2)]) {
    for (q, m) in mats {
        apply_1q(amps, *q, m);
    }
}

/// Shared helper: multiply amplitudes by `p0`/`p1` depending on bit `q` of
/// the global index.
fn apply_diag_bit(amps: &mut [C64], base_index: u64, q: usize, p0: C64, p1: C64) {
    let mask = 1u64 << q;
    for (i, a) in amps.iter_mut().enumerate() {
        let idx = base_index + i as u64;
        *a *= if idx & mask == 0 { p0 } else { p1 };
    }
}

/// Apply a global phase `e^{iφ}` (used by synthesis passes when folding
/// the constant term of the cost Hamiltonian).
pub fn apply_global_phase(amps: &mut [C64], phi: f64) {
    let p = C64::cis(phi);
    for a in amps.iter_mut() {
        *a *= p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn approx(a: C64, b: C64) -> bool {
        (a - b).norm_sqr() < EPS
    }

    #[test]
    fn standard_matrices_are_unitary() {
        for m in [
            h_matrix(),
            x_matrix(),
            y_matrix(),
            z_matrix(),
            rx_matrix(0.37),
            ry_matrix(1.2),
            rz_matrix(-2.1),
        ] {
            assert!(is_unitary(&m, 1e-20));
        }
    }

    #[test]
    fn hadamard_twice_is_identity() {
        let mut amps = vec![C64::ONE, C64::ZERO];
        let h = h_matrix();
        apply_1q(&mut amps, 0, &h);
        apply_1q(&mut amps, 0, &h);
        assert!(approx(amps[0], C64::ONE));
        assert!(approx(amps[1], C64::ZERO));
    }

    #[test]
    fn x_flips_basis_state() {
        let mut amps = vec![C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO]; // |00⟩
        apply_1q(&mut amps, 1, &x_matrix());
        assert!(approx(amps[2], C64::ONE)); // |10⟩ (bit 1 set)
    }

    #[test]
    fn rx_full_turn_is_minus_identity() {
        let mut amps = vec![C64::new(0.6, 0.0), C64::new(0.0, 0.8)];
        let before = amps.clone();
        apply_1q(&mut amps, 0, &rx_matrix(2.0 * std::f64::consts::PI));
        assert!(approx(amps[0], -before[0]));
        assert!(approx(amps[1], -before[1]));
    }

    #[test]
    fn rzz_phases_match_parity() {
        let theta = 0.9;
        let mut amps = vec![C64::ONE; 4];
        apply_rzz(&mut amps, 0, 0, 1, theta);
        // |00⟩,|11⟩ same parity; |01⟩,|10⟩ differ
        assert!(approx(amps[0], C64::cis(-theta / 2.0)));
        assert!(approx(amps[3], C64::cis(-theta / 2.0)));
        assert!(approx(amps[1], C64::cis(theta / 2.0)));
        assert!(approx(amps[2], C64::cis(theta / 2.0)));
    }

    #[test]
    fn rzz_respects_base_index_offset() {
        let theta = 0.5;
        // simulate a chunk starting at global index 2 for qubits (0,1)
        let mut chunk = vec![C64::ONE; 2];
        apply_rzz(&mut chunk, 2, 0, 1, theta);
        // global 2 = |10⟩ differing bits, global 3 = |11⟩ same
        assert!(approx(chunk[0], C64::cis(theta / 2.0)));
        assert!(approx(chunk[1], C64::cis(-theta / 2.0)));
    }

    #[test]
    fn cnot_entangles_plus_state() {
        // (|0⟩+|1⟩)/√2 ⊗ |0⟩, control = qubit 0 → Bell state
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let mut amps = vec![C64::real(s), C64::real(s), C64::ZERO, C64::ZERO];
        apply_cnot(&mut amps, 0, 1);
        assert!(approx(amps[0], C64::real(s)));
        assert!(approx(amps[3], C64::real(s)));
        assert!(approx(amps[1], C64::ZERO));
    }

    #[test]
    fn cz_equals_rzz_up_to_phases() {
        // CZ = e^{iπ/4} RZZ(π/2) · RZ(−π/2)⊗RZ(−π/2) — verify on all basis states
        let mut a = vec![C64::ONE; 4];
        apply_cz(&mut a, 0, 0, 1);
        let mut b = vec![C64::ONE; 4];
        apply_rzz(&mut b, 0, 0, 1, std::f64::consts::FRAC_PI_2);
        apply_rz(&mut b, 0, 0, -std::f64::consts::FRAC_PI_2);
        apply_rz(&mut b, 0, 1, -std::f64::consts::FRAC_PI_2);
        apply_global_phase(&mut b, -std::f64::consts::FRAC_PI_4);
        for i in 0..4 {
            assert!(approx(a[i], b[i]), "index {i}: {} vs {}", a[i], b[i]);
        }
    }

    #[test]
    fn paired_kernel_matches_flat_kernel() {
        let m = rx_matrix(0.77);
        // 3-qubit state, gate on the top qubit (q=2)
        let amps: Vec<C64> = (0..8).map(|i| C64::new(i as f64, -(i as f64) / 2.0)).collect();
        let mut flat = amps.clone();
        apply_1q(&mut flat, 2, &m);
        let (lo, hi) = amps.split_at(4);
        let mut lo = lo.to_vec();
        let mut hi = hi.to_vec();
        apply_1q_paired(&mut lo, &mut hi, &m);
        for i in 0..4 {
            assert!(approx(flat[i], lo[i]));
            assert!(approx(flat[i + 4], hi[i]));
        }
    }

    #[test]
    fn mat_mul_identity() {
        let id = [C64::ONE, C64::ZERO, C64::ZERO, C64::ONE];
        let m = rx_matrix(0.3);
        assert_eq!(mat_mul(&id, &m), m);
    }

    fn ramp_state(n: usize) -> Vec<C64> {
        (0..n).map(|i| C64::new(1.0 + 0.1 * i as f64, -0.05 * i as f64)).collect()
    }

    #[test]
    fn diag_terms_match_gate_sequence() {
        // one fused sweep vs four separate diagonal-gate sweeps
        let amps = ramp_state(8);
        let mut seq = amps.clone();
        apply_rz(&mut seq, 0, 0, 0.3);
        apply_rzz(&mut seq, 0, 0, 2, 0.7);
        apply_cz(&mut seq, 0, 1, 2);
        apply_global_phase(&mut seq, 0.2);
        let pi4 = std::f64::consts::FRAC_PI_4;
        let terms = [
            DiagTerm { mask: 0b001, coef: -0.15 },
            DiagTerm { mask: 0b101, coef: -0.35 },
            DiagTerm { mask: 0b010, coef: -pi4 },
            DiagTerm { mask: 0b100, coef: -pi4 },
            DiagTerm { mask: 0b110, coef: pi4 },
        ];
        let mut fused = amps;
        apply_diag_terms(&mut fused, 0, 0.2 + pi4, &terms);
        for i in 0..8 {
            assert!(approx(seq[i], fused[i]), "index {i}: {} vs {}", seq[i], fused[i]);
        }
    }

    #[test]
    fn diag_terms_respect_base_index() {
        let amps = ramp_state(8);
        let terms = [DiagTerm { mask: 0b110, coef: 0.4 }, DiagTerm { mask: 0b001, coef: -0.9 }];
        let mut whole = amps.clone();
        apply_diag_terms(&mut whole, 0, 0.1, &terms);
        let mut lo = amps[..4].to_vec();
        let mut hi = amps[4..].to_vec();
        apply_diag_terms(&mut lo, 0, 0.1, &terms);
        apply_diag_terms(&mut hi, 4, 0.1, &terms);
        for i in 0..4 {
            assert!(approx(whole[i], lo[i]));
            assert!(approx(whole[i + 4], hi[i]));
        }
    }

    #[test]
    fn diag_plan_matches_reference_kernel_and_is_chunk_invariant() {
        // 13 terms -> two byte-sliced groups; masks span bytes 0 and 1.
        let terms: Vec<DiagTerm> = (0..9)
            .map(|q| DiagTerm { mask: (1 << q) | (1 << (q + 1)), coef: 0.05 * (q + 1) as f64 })
            .chain((0..4).map(|q| DiagTerm { mask: 1 << q, coef: -0.3 + 0.1 * q as f64 }))
            .collect();
        let amps = ramp_state(1 << 10);
        let mut reference = amps.clone();
        apply_diag_terms(&mut reference, 0, 0.25, &terms);

        let plan = DiagPlan::new(0.25, &terms);
        let mut whole = amps.clone();
        plan.apply(&mut whole, 0);
        let mut split = amps;
        let (lo, hi) = split.split_at_mut(512);
        plan.apply(lo, 0);
        plan.apply(hi, 512);

        for i in 0..whole.len() {
            assert!(approx(reference[i], whole[i]), "index {i}");
            // chunking the same plan never changes a single bit
            assert_eq!(whole[i], split[i], "index {i}");
        }

        // single-group plan (pre-exponentiated multipliers) agrees too
        let short = &terms[..5];
        let mut ref_short = ramp_state(64);
        apply_diag_terms(&mut ref_short, 0, -0.7, short);
        let mut plan_short = ramp_state(64);
        DiagPlan::new(-0.7, short).apply(&mut plan_short, 0);
        for i in 0..64 {
            assert!(approx(ref_short[i], plan_short[i]), "index {i}");
        }
    }

    #[test]
    fn wall_matches_individual_gates() {
        let amps = ramp_state(8);
        let mut seq = amps.clone();
        apply_1q(&mut seq, 0, &h_matrix());
        apply_1q(&mut seq, 2, &rx_matrix(0.5));
        let mut wall = amps;
        apply_1q_wall(&mut wall, &[(0, h_matrix()), (2, rx_matrix(0.5))]);
        for i in 0..8 {
            assert!(approx(seq[i], wall[i]));
        }
    }
}
