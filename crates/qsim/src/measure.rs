//! Measurement: shot sampling, diagonal expectations, top-k extraction.
//!
//! The paper runs every circuit with 4096 shots and then takes the bit
//! string with the highest amplitude as the solution; it explicitly notes
//! that inspecting several of the highest amplitudes would be better. Both
//! policies need the primitives here: [`sample_counts`] (multinomial shot
//! sampling), [`expectation_diagonal`] / [`expectation_from_table`] (exact
//! ⟨H_C⟩), and [`top_k_amplitudes`].

use crate::complex::C64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Exact expectation of a diagonal observable: `Σ_z |a_z|² f(z)`.
///
/// `f` receives the basis index (global, little-endian). `base` offsets the
/// indices so chunked storage can evaluate per chunk.
pub fn expectation_diagonal(amps: &[C64], base: u64, f: impl Fn(u64) -> f64 + Sync) -> f64 {
    // REDUCTION: vendored fixed split tree — DEFAULT_GRAIN leaves over the
    // amplitude slice, partial sums combined in chunk-index order.
    amps.par_iter().enumerate().map(|(i, a)| a.norm_sqr() * f(base + i as u64)).sum()
}

/// Exact expectation against a precomputed value table
/// (`table[z] = f(z)`), the fused fast path used by the QAOA driver.
pub fn expectation_from_table(amps: &[C64], table: &[f64]) -> f64 {
    debug_assert_eq!(amps.len(), table.len());
    // REDUCTION: vendored fixed split tree — zipped slices share one
    // DEFAULT_GRAIN chunking, partial sums combined in chunk-index order.
    amps.par_iter().zip(table.par_iter()).map(|(a, &v)| a.norm_sqr() * v).sum()
}

/// Multinomial shot sampling: draw `shots` basis states from `|a_z|²`.
///
/// Returns `(basis_index, count)` pairs sorted by basis index. Implemented
/// with the sorted-uniforms sweep: `O(2^n + shots·log shots)` and no
/// cumulative-probability allocation, so it works for large registers.
pub fn sample_counts(amps: &[C64], shots: usize, seed: u64) -> Vec<(u64, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points: Vec<f64> = (0..shots).map(|_| rng.gen::<f64>()).collect();
    // INVARIANT: rng.gen::<f64>() yields finite values in [0, 1), so
    // partial_cmp never sees a NaN.
    points.sort_by(|a, b| a.partial_cmp(b).expect("uniforms are finite"));
    sweep_sorted_points(amps.iter().map(|a| a.norm_sqr()), &points)
}

/// Shared sweep: walk probabilities once, consuming sorted sample points.
pub(crate) fn sweep_sorted_points(
    probs: impl Iterator<Item = f64>,
    points: &[f64],
) -> Vec<(u64, u32)> {
    let mut out: Vec<(u64, u32)> = Vec::new();
    let mut acc = 0.0f64;
    let mut next = 0usize;
    for (z, p) in probs.enumerate() {
        if next >= points.len() {
            break;
        }
        acc += p;
        let mut count = 0u32;
        while next < points.len() && points[next] < acc {
            count += 1;
            next += 1;
        }
        if count > 0 {
            out.push((z as u64, count));
        }
    }
    // numerical shortfall (norm slightly below the largest uniform):
    // assign stragglers to the last basis state, preserving shot count.
    if next < points.len() {
        let remaining = (points.len() - next) as u32;
        match out.last_mut() {
            Some(last) => last.1 += remaining,
            None => out.push((0, remaining)),
        }
    }
    out
}

/// Min-heap entry for top-k selection (ordered by probability ascending so
/// the heap root is the weakest candidate).
#[derive(PartialEq)]
struct HeapItem {
    prob: f64,
    index: u64,
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on probability: BinaryHeap is a max-heap and the root
        // must be the *weakest* candidate. Ties break on index ascending
        // (lower basis index is the stronger candidate), so the weakest of
        // an equal-probability group is the highest index.
        other.prob.total_cmp(&self.prob).then_with(|| self.index.cmp(&other.index))
    }
}

/// The `k` most probable basis states, highest first. Deterministic
/// tie-break on the basis index (lower index wins) keeps solution
/// extraction reproducible.
pub fn top_k_amplitudes(amps: &[C64], k: usize) -> Vec<(u64, f64)> {
    top_k_from_probs(amps.iter().map(|a| a.norm_sqr()), 0, k, Vec::new())
}

/// Streaming top-k over `(index, probability)` pairs starting at `base`;
/// `carry` lets chunked storage fold chunk results together.
pub(crate) fn top_k_from_probs(
    probs: impl Iterator<Item = f64>,
    base: u64,
    k: usize,
    carry: Vec<(u64, f64)>,
) -> Vec<(u64, f64)> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<HeapItem> =
        carry.into_iter().map(|(index, prob)| HeapItem { prob, index }).collect();
    for (i, p) in probs.enumerate() {
        let item = HeapItem { prob: p, index: base + i as u64 };
        if heap.len() < k {
            heap.push(item);
        } else if heap.peek().map(|w| item.cmp(w) == Ordering::Less).unwrap_or(false) {
            // The heap order is reversed (root = weakest candidate), so
            // `Less` means `item` is naturally stronger than the weakest
            // kept candidate — evict and insert.
            heap.pop();
            heap.push(item);
        }
    }
    let mut v: Vec<(u64, f64)> = heap.into_iter().map(|h| (h.index, h.prob)).collect();
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;

    #[test]
    fn expectation_of_plus_state_counts_half() {
        // f(z) = bit count: uniform superposition on n qubits → n/2
        let s = StateVector::plus_state(6);
        let e = expectation_diagonal(s.amplitudes(), 0, |z| z.count_ones() as f64);
        assert!((e - 3.0).abs() < 1e-10);
    }

    #[test]
    fn expectation_table_matches_closure() {
        let mut s = StateVector::plus_state(5);
        s.rx(2, 0.7);
        s.rzz(0, 4, 0.3);
        let table: Vec<f64> = (0..32u64).map(|z| (z as f64).sin()).collect();
        let a = expectation_diagonal(s.amplitudes(), 0, |z| (z as f64).sin());
        let b = expectation_from_table(s.amplitudes(), &table);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn sampling_conserves_shots() {
        let mut s = StateVector::plus_state(4);
        s.ry(1, 0.9);
        let shots = 4096;
        let counts = sample_counts(s.amplitudes(), shots, 11);
        let total: u32 = counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total as usize, shots);
    }

    #[test]
    fn sampling_delta_state_hits_single_index() {
        let s = StateVector::zero_state(5);
        let counts = sample_counts(s.amplitudes(), 100, 3);
        assert_eq!(counts, vec![(0, 100)]);
    }

    #[test]
    fn sampling_is_seeded() {
        let s = StateVector::plus_state(6);
        assert_eq!(sample_counts(s.amplitudes(), 512, 9), sample_counts(s.amplitudes(), 512, 9));
    }

    #[test]
    fn sampling_tracks_probabilities() {
        // |ψ⟩ with P(0)=0.25, P(1)=0.75 via RY rotation: cos²(θ/2)=0.25
        let theta = 2.0 * (0.25f64.sqrt()).acos();
        let mut s = StateVector::zero_state(1);
        s.ry(0, theta);
        let shots = 40_000;
        let counts = sample_counts(s.amplitudes(), shots, 17);
        let p1 = counts
            .iter()
            .find(|&&(z, _)| z == 1)
            .map(|&(_, c)| c as f64 / shots as f64)
            .unwrap_or(0.0);
        assert!((p1 - 0.75).abs() < 0.02, "p1 = {p1}");
    }

    #[test]
    fn top_k_orders_by_probability() {
        let mut s = StateVector::zero_state(3);
        s.ry(0, 0.8);
        s.ry(1, 0.3);
        let top = top_k_amplitudes(s.amplitudes(), 3);
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
        // exact selection: P(000) > P(001) > P(010) dominate the rest
        let idx: Vec<u64> = top.iter().map(|&(z, _)| z).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn top_k_matches_full_sort_reference() {
        let mut s = StateVector::plus_state(6);
        s.ry(0, 0.9);
        s.ry(3, -0.4);
        s.rzz(1, 4, 0.7);
        s.rx(2, 1.3);
        for k in [1, 3, 7, 64] {
            let top = top_k_amplitudes(s.amplitudes(), k);
            let mut reference: Vec<(u64, f64)> =
                s.amplitudes().iter().enumerate().map(|(i, a)| (i as u64, a.norm_sqr())).collect();
            reference.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            reference.truncate(k);
            assert_eq!(top, reference, "k = {k}");
        }
    }

    #[test]
    fn top_k_k_larger_than_space() {
        let s = StateVector::plus_state(2);
        let top = top_k_amplitudes(s.amplitudes(), 10);
        assert_eq!(top.len(), 4);
    }

    #[test]
    fn top_k_zero() {
        let s = StateVector::plus_state(2);
        assert!(top_k_amplitudes(s.amplitudes(), 0).is_empty());
    }

    #[test]
    fn top_k_deterministic_tie_break() {
        let s = StateVector::plus_state(4); // all equal probabilities
        let top = top_k_amplitudes(s.amplitudes(), 5);
        let idx: Vec<u64> = top.iter().map(|&(z, _)| z).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }
}
