//! The QAOA² merge step (paper §3.3, step 4).
//!
//! Given local solutions `s_i ∈ {±1}` for every community, the total cut
//! decomposes into intra-community cuts (fixed) plus inter-community
//! contributions that depend only on whether each community is flipped:
//!
//! ```text
//! inter-cut(σ) = Σ_{A<B} Σ_{(i,j)∈E(A,B)} w_ij (1 − s_i s_j σ_A σ_B)/2
//! ```
//!
//! Maximizing over the flips `σ ∈ {±1}^k` is itself a MaxCut problem on
//! the coarse graph with weights `W_AB = Σ w_ij s_i s_j` — equivalently,
//! the paper's rule: an inter-community edge that is already cut
//! contributes with weight `−w`, an uncut one with `+w`.

use qq_graph::{Cut, Graph, Partition};

/// Build the coarse merge graph from local solutions.
///
/// `local_cuts[c]` is the solution of community `c` in *local* indexing
/// (as produced by solving the induced sub-graph of
/// `partition.communities()[c]`).
///
/// Zero-weight coarse edges are kept out of the graph (they cannot change
/// the optimum and would only slow the coarse solver).
pub fn build_merge_graph(g: &Graph, partition: &Partition, local_cuts: &[Cut]) -> Graph {
    let k = partition.len();
    assert_eq!(local_cuts.len(), k, "one local cut per community required");
    let assignment = partition.assignment();

    // local index of each node within its community
    let mut local_index = vec![0u32; g.num_nodes()];
    for members in partition.communities() {
        for (li, &v) in members.iter().enumerate() {
            local_index[v as usize] = li as u32;
        }
    }

    // Accumulate W_AB = Σ w_ij s_i s_j over inter-community edges.
    // DETERMINISM: a BTreeMap keyed on (min, max) community pairs makes
    // the coarse edge order a sorted fact of the container, not of a
    // post-hoc sort — per-key sums still accumulate in g.edges() order,
    // which is fixed, so the merge graph is bit-identical across
    // processes and thread counts (pinned by the digest battery's
    // merge-edge fold in tests/determinism.rs).
    let mut weights: std::collections::BTreeMap<(u32, u32), f64> =
        std::collections::BTreeMap::new();
    for e in g.edges() {
        let ca = assignment[e.u as usize];
        let cb = assignment[e.v as usize];
        if ca == cb {
            continue;
        }
        let si = local_cuts[ca as usize].spin(local_index[e.u as usize]);
        let sj = local_cuts[cb as usize].spin(local_index[e.v as usize]);
        let key = if ca < cb { (ca, cb) } else { (cb, ca) };
        *weights.entry(key).or_insert(0.0) += e.w * si * sj;
    }

    let mut builder = qq_graph::GraphBuilder::with_capacity(k, weights.len());
    for ((a, b), w) in weights {
        if w != 0.0 {
            // INVARIANT: keys are deduplicated (a, b) pairs with a < b
            // and both endpoints < k by construction of `assignment`.
            builder.add_edge(a, b, w).expect("coarse edges are unique and in range");
        }
    }
    // INVARIANT: one edge per BTreeMap key — no duplicates for finalize.
    builder.finalize().expect("coarse edges are unique")
}

/// Compose the global cut: community-local solutions plus coarse flips.
///
/// Community `c` keeps its local solution if `coarse_cut.get(c) == false`
/// and flips every node otherwise (the paper's "if a node in the new graph
/// is −1, all the nodes in the sub-graph represented by this node are
/// flipped").
pub fn apply_flips(g: &Graph, partition: &Partition, local_cuts: &[Cut], coarse_cut: &Cut) -> Cut {
    assert_eq!(coarse_cut.len(), partition.len());
    let mut global = Cut::new(g.num_nodes());
    for (c, members) in partition.communities().iter().enumerate() {
        let flip = coarse_cut.get(c as u32);
        for (li, &v) in members.iter().enumerate() {
            let side = local_cuts[c].get(li as u32) ^ flip;
            global.set(v, side);
        }
    }
    global
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::WeightKind;
    use qq_graph::{generators, partition_with_cap};

    /// Independent recomputation of the composed cut value, for checking
    /// the merge-identity invariant.
    fn total_cut_value(
        g: &Graph,
        partition: &Partition,
        local_cuts: &[Cut],
        coarse: &Graph,
        coarse_cut: &Cut,
    ) -> f64 {
        // intra value
        let mut intra = 0.0;
        for (c, members) in partition.communities().iter().enumerate() {
            let (sub, _) = g.induced_subgraph(members);
            intra += local_cuts[c].value(&sub);
        }
        // inter constant: Σ over inter edges of w/2 ... easier: recompute
        // via the decomposition: inter(σ) = (W_inter − Σ_AB W_AB σ_A σ_B)/2
        let assignment = partition.assignment();
        let w_inter: f64 = g
            .edges()
            .iter()
            .filter(|e| assignment[e.u as usize] != assignment[e.v as usize])
            .map(|e| e.w)
            .sum();
        let mut signed = 0.0;
        for e in coarse.edges() {
            let sa = coarse_cut.spin(e.u);
            let sb = coarse_cut.spin(e.v);
            signed += e.w * sa * sb;
        }
        intra + (w_inter - signed) / 2.0
    }

    #[test]
    fn merge_identity_invariant() {
        // composed global cut value == intra + coarse-derived inter value
        for seed in 0..5 {
            let g = generators::erdos_renyi(40, 0.15, WeightKind::Random01, seed);
            let partition = partition_with_cap(&g, 8);
            let local_cuts: Vec<Cut> = partition
                .communities()
                .iter()
                .enumerate()
                .map(|(c, members)| {
                    let (sub, _) = g.induced_subgraph(members);
                    qq_classical::one_exchange(&sub, seed * 31 + c as u64).cut
                })
                .collect();
            let coarse = build_merge_graph(&g, &partition, &local_cuts);
            let coarse_cut = qq_classical::one_exchange(&coarse, seed).cut;
            let global = apply_flips(&g, &partition, &local_cuts, &coarse_cut);
            let direct = global.value(&g);
            let decomposed = total_cut_value(&g, &partition, &local_cuts, &coarse, &coarse_cut);
            assert!(
                (direct - decomposed).abs() < 1e-9,
                "seed {seed}: direct {direct} vs decomposed {decomposed}"
            );
        }
    }

    #[test]
    fn flipping_helps_when_local_solutions_misalign() {
        // two communities of one edge each, joined by two parallel edges;
        // misaligned local cuts must be repaired by the coarse solve.
        let g = Graph::from_edges(
            4,
            [
                (0, 1, 1.0), // community A
                (2, 3, 1.0), // community B
                (0, 2, 1.0),
                (1, 3, 1.0),
            ],
        )
        .unwrap();
        let partition = Partition::new(4, vec![vec![0, 1], vec![2, 3]]);
        // both communities cut their internal edge, but sides misalign:
        // A: 0→side0, 1→side1; B: 2→side0, 3→side1 — the inter edges
        // (0,2) and (1,3) are both UNcut (composed value 2, optimum 4)
        let local_cuts = vec![Cut::from_bools(&[false, true]), Cut::from_bools(&[false, true])];
        // without any flip the composition is suboptimal
        let unflipped = apply_flips(&g, &partition, &local_cuts, &Cut::new(2)).value(&g);
        assert_eq!(unflipped, 2.0);
        let coarse = build_merge_graph(&g, &partition, &local_cuts);
        // W_AB = w02·s0·s2 + w13·s1·s3 = (+1)(+1)(+1) + (+1)(−1)(−1) = +2
        assert_eq!(coarse.num_edges(), 1);
        assert_eq!(coarse.edges()[0].w, 2.0);
        // coarse MaxCut cuts the positive edge → flip community B
        let coarse_cut = qq_classical::exact_maxcut(&coarse).cut;
        let global = apply_flips(&g, &partition, &local_cuts, &coarse_cut);
        assert_eq!(global.value(&g), 4.0);
    }

    #[test]
    fn zero_weight_coarse_edges_dropped() {
        // two inter edges whose signed weights cancel exactly
        let g = Graph::from_edges(4, [(0, 2, 1.0), (1, 3, 1.0)]).unwrap();
        let partition = Partition::new(4, vec![vec![0, 1], vec![2, 3]]);
        // s0=+1, s1=−1 (A); s2=+1, s3=−1 (B): W = 1·(+1)(+1) + 1·(−1)(−1)... = 2
        // choose locals so terms cancel: s2=−1, s3=−1 → W = −1 + 1 = 0
        let local_cuts = vec![Cut::from_bools(&[false, true]), Cut::from_bools(&[true, true])];
        let coarse = build_merge_graph(&g, &partition, &local_cuts);
        assert_eq!(coarse.num_edges(), 0);
    }

    #[test]
    fn global_flip_of_coarse_cut_gives_same_value() {
        let g = generators::erdos_renyi(30, 0.2, WeightKind::Uniform, 7);
        let partition = partition_with_cap(&g, 6);
        let local_cuts: Vec<Cut> = partition
            .communities()
            .iter()
            .map(|members| {
                let (sub, _) = g.induced_subgraph(members);
                qq_classical::one_exchange(&sub, 5).cut
            })
            .collect();
        let coarse = build_merge_graph(&g, &partition, &local_cuts);
        let mut cc = qq_classical::one_exchange(&coarse, 9).cut;
        let a = apply_flips(&g, &partition, &local_cuts, &cc).value(&g);
        cc.flip_all();
        let b = apply_flips(&g, &partition, &local_cuts, &cc).value(&g);
        assert!((a - b).abs() < 1e-9);
    }

    use qq_graph::Graph;
}
