//! Sub-graph solver configuration — the run-time quantum/classical
//! decision mechanism the paper investigates.
//!
//! [`SubSolver`] is a *configuration* enum: each variant holds backend
//! settings and [`SubSolver::to_backend`] constructs the corresponding
//! [`MaxCutSolver`] trait object from its home crate (`qq-qaoa`, `qq-gw`,
//! `qq-classical`). The orchestrator in [`crate::qaoa2`] dispatches only
//! through the trait, so backends added outside this crate plug in via
//! [`SubSolver::Custom`] (any boxed/arc'd `MaxCutSolver`) or through the
//! [`crate::registry::SolverRegistry`] — no edits here required.

use std::sync::Arc;

use qq_classical::annealing::AnnealingSchedule;
use qq_classical::{AnnealingSolver, CutResult, ExactSolver, LocalSearchSolver, RandomSolver};
use qq_graph::{BestOf, BoxedSolver, Cut, Graph, MaxCutSolver, SolverError};
use qq_gw::{GwConfig, GwSolver};
use qq_hpc::HeterogeneousPool;
use qq_qaoa::{QaoaConfig, QaoaGridSolver, QaoaSolver, RqaoaSolver};

/// A dynamically supplied backend (the escape hatch for solvers defined
/// outside this crate). `Arc` rather than `Box` so the configuration enum
/// stays cheaply cloneable.
pub type SharedSolver = Arc<dyn MaxCutSolver>;

/// Which method solves a sub-graph MaxCut.
#[derive(Clone)]
pub enum SubSolver {
    /// QAOA on a simulated quantum device.
    Qaoa(QaoaConfig),
    /// QAOA grid search over `(p, rhobeg)` — the paper's per-sub-graph
    /// procedure for Fig. 4 ("analyzed with the same parameter grid search
    /// from before, and the QAOA solution with the highest MaxCut value is
    /// stored").
    QaoaGrid {
        /// Layer counts to scan.
        ps: Vec<usize>,
        /// `rhobeg` values to scan.
        rhobegs: Vec<f64>,
        /// Template configuration (seed, shots, policy, …).
        base: QaoaConfig,
    },
    /// Goemans–Williamson (classical).
    Gw(GwConfig),
    /// Solve with both QAOA and GW, keep the better cut — the hybrid
    /// "Best" series of Fig. 4.
    Best {
        /// QAOA settings.
        qaoa: QaoaConfig,
        /// GW settings.
        gw: GwConfig,
    },
    /// Best of `trials` random bipartitions.
    Random {
        /// Number of random cuts to draw.
        trials: usize,
    },
    /// One-exchange local search.
    LocalSearch,
    /// Simulated annealing.
    Annealing(AnnealingSchedule),
    /// Recursive QAOA (Bravyi et al.) — the non-local variant the paper
    /// notes "can also be leveraged using QAOA² to get a good global
    /// solution for very large problems".
    Rqaoa(qq_qaoa::RqaoaConfig),
    /// Exact enumeration (≤ 30 nodes) — ground truth for ablations.
    Exact,
    /// Any externally supplied [`MaxCutSolver`]: the open end of the
    /// backend layer. Build one with [`SubSolver::custom`] or via the
    /// `From` impls for boxed/arc'd trait objects.
    Custom(SharedSolver),
    /// A heterogeneous backend set routed by capability (Fig. 2's mixed
    /// quantum/classical worker pool): quantum members take every
    /// instance their caps admit, everything else degrades to the
    /// classical members. The orchestrator hands the members to the
    /// execution engine individually ([`SubSolver::to_pool`]); as a
    /// plain backend ([`SubSolver::to_backend`]) the set routes one
    /// instance at a time.
    Pool(Vec<SubSolver>),
}

impl std::fmt::Debug for SubSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubSolver::Qaoa(cfg) => f.debug_tuple("Qaoa").field(cfg).finish(),
            SubSolver::QaoaGrid { ps, rhobegs, base } => f
                .debug_struct("QaoaGrid")
                .field("ps", ps)
                .field("rhobegs", rhobegs)
                .field("base", base)
                .finish(),
            SubSolver::Gw(cfg) => f.debug_tuple("Gw").field(cfg).finish(),
            SubSolver::Best { qaoa, gw } => {
                f.debug_struct("Best").field("qaoa", qaoa).field("gw", gw).finish()
            }
            SubSolver::Random { trials } => {
                f.debug_struct("Random").field("trials", trials).finish()
            }
            SubSolver::LocalSearch => f.write_str("LocalSearch"),
            SubSolver::Annealing(s) => f.debug_tuple("Annealing").field(s).finish(),
            SubSolver::Rqaoa(cfg) => f.debug_tuple("Rqaoa").field(cfg).finish(),
            SubSolver::Exact => f.write_str("Exact"),
            SubSolver::Custom(s) => f.debug_tuple("Custom").field(&s.label()).finish(),
            SubSolver::Pool(members) => f.debug_tuple("Pool").field(members).finish(),
        }
    }
}

impl SubSolver {
    /// Short label for reports. Matches the label of the backend
    /// [`SubSolver::to_backend`] constructs.
    pub fn label(&self) -> &str {
        match self {
            SubSolver::Qaoa(_) => "qaoa",
            SubSolver::QaoaGrid { .. } => "qaoa-grid",
            SubSolver::Gw(_) => "gw",
            SubSolver::Best { .. } => "best",
            SubSolver::Random { .. } => "random",
            SubSolver::LocalSearch => "local-search",
            SubSolver::Annealing(_) => "annealing",
            SubSolver::Rqaoa(_) => "rqaoa",
            SubSolver::Exact => "exact",
            SubSolver::Custom(s) => s.label(),
            SubSolver::Pool(_) => "pool",
        }
    }

    /// Reject configurations that cannot build a backend (today: empty
    /// pools, at any nesting depth). Called by `qq_core::solve` before
    /// any backend is constructed so the failure is a config error, not
    /// a panic.
    pub fn validate(&self) -> Result<(), crate::Qaoa2Error> {
        if let SubSolver::Pool(members) = self {
            if members.is_empty() {
                return Err(crate::Qaoa2Error::InvalidConfig(
                    "solver pool needs at least one member".into(),
                ));
            }
            for m in members {
                m.validate()?;
            }
        }
        Ok(())
    }

    /// Wrap an externally defined backend.
    pub fn custom(solver: impl MaxCutSolver + 'static) -> Self {
        SubSolver::Custom(Arc::new(solver))
    }

    /// Construct the backend this configuration describes.
    ///
    /// Enum variants build their implementation from its home crate;
    /// [`SubSolver::Custom`] hands back the wrapped instance. Call once
    /// per batch of solves, not per solve — grid and hybrid backends are
    /// cheap to build but not free.
    pub fn to_backend(&self) -> SharedSolver {
        match self {
            SubSolver::Qaoa(cfg) => Arc::new(QaoaSolver { config: cfg.clone() }),
            SubSolver::QaoaGrid { ps, rhobegs, base } => Arc::new(QaoaGridSolver {
                ps: ps.clone(),
                rhobegs: rhobegs.clone(),
                base: base.clone(),
            }),
            SubSolver::Gw(cfg) => Arc::new(GwSolver { config: *cfg }),
            SubSolver::Best { qaoa, gw } => Arc::new(BestOf::new(vec![
                Box::new(QaoaSolver { config: qaoa.clone() }) as BoxedSolver,
                Box::new(GwSolver { config: *gw }),
            ])),
            SubSolver::Random { trials } => Arc::new(RandomSolver { trials: *trials }),
            SubSolver::LocalSearch => Arc::new(LocalSearchSolver),
            SubSolver::Annealing(schedule) => Arc::new(AnnealingSolver { schedule: *schedule }),
            SubSolver::Rqaoa(cfg) => Arc::new(RqaoaSolver { config: cfg.clone() }),
            SubSolver::Exact => Arc::new(ExactSolver),
            SubSolver::Custom(solver) => Arc::clone(solver),
            SubSolver::Pool(_) => Arc::new(self.to_pool()),
        }
    }

    /// Construct the backend *pool* this configuration describes — what
    /// the QAOA² orchestrator hands to the execution engine per level.
    ///
    /// [`SubSolver::Pool`] exposes its members individually so the
    /// engine can route each sub-graph by capability; every other
    /// variant is a single-member pool. Nested pools are **flattened**
    /// (depth-first, preserving order): routing quantum-first over the
    /// leaves picks the same backend a nested pool would, and the
    /// engine's per-class accounting then sees the real quantum/classical
    /// split instead of one opaque "quantum" composite.
    ///
    /// Panics on an empty [`SubSolver::Pool`] (a pool needs a member);
    /// call [`SubSolver::validate`] first to surface that as a config
    /// error instead — every orchestrator entry point does.
    pub fn to_pool(&self) -> HeterogeneousPool {
        match self {
            SubSolver::Pool(_) => {
                let mut members = Vec::new();
                self.collect_pool_members(&mut members);
                HeterogeneousPool::new(members)
            }
            other => HeterogeneousPool::single(other.to_backend()),
        }
    }

    fn collect_pool_members(&self, out: &mut Vec<SharedSolver>) {
        match self {
            SubSolver::Pool(members) => {
                for m in members {
                    m.collect_pool_members(out);
                }
            }
            other => out.push(other.to_backend()),
        }
    }
}

impl From<SharedSolver> for SubSolver {
    fn from(solver: SharedSolver) -> Self {
        SubSolver::Custom(solver)
    }
}

impl From<BoxedSolver> for SubSolver {
    fn from(solver: BoxedSolver) -> Self {
        SubSolver::Custom(Arc::from(solver))
    }
}

impl From<SolverError> for crate::Qaoa2Error {
    fn from(e: SolverError) -> Self {
        match e {
            SolverError::InvalidConfig(m) => crate::Qaoa2Error::InvalidConfig(m),
            other => crate::Qaoa2Error::Solver(other.to_string()),
        }
    }
}

/// Solve one sub-graph through an already-built backend, with the
/// orchestrator's uniform guards (empty graphs short-circuit, capability
/// envelopes are enforced before dispatch).
pub fn solve_with_backend(
    g: &Graph,
    backend: &dyn MaxCutSolver,
    seed: u64,
) -> Result<CutResult, crate::Qaoa2Error> {
    if g.num_nodes() == 0 {
        return Ok(CutResult::new(Cut::new(0), g));
    }
    backend.check_instance(g)?;
    Ok(backend.solve(g, seed)?)
}

/// Solve one sub-graph. `seed` perturbs every stochastic component so
/// repeated sub-problems explore independently while staying reproducible.
///
/// Convenience wrapper building the backend per call; batch callers (the
/// QAOA² level loop) build once via [`SubSolver::to_backend`] and use
/// [`solve_with_backend`].
pub fn solve_subgraph(
    g: &Graph,
    solver: &SubSolver,
    seed: u64,
) -> Result<CutResult, crate::Qaoa2Error> {
    solver.validate()?;
    solve_with_backend(g, solver.to_backend().as_ref(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};
    use qq_graph::SolverCaps;

    fn small_graph(seed: u64) -> Graph {
        generators::erdos_renyi(9, 0.4, WeightKind::Uniform, seed)
    }

    #[test]
    fn every_solver_returns_valid_cut() {
        let g = small_graph(4);
        let solvers = [
            SubSolver::Qaoa(QaoaConfig { layers: 1, max_iters: 12, ..QaoaConfig::default() }),
            SubSolver::Gw(GwConfig::default()),
            SubSolver::Best {
                qaoa: QaoaConfig { layers: 1, max_iters: 12, ..QaoaConfig::default() },
                gw: GwConfig::default(),
            },
            SubSolver::Random { trials: 8 },
            SubSolver::LocalSearch,
            SubSolver::Annealing(AnnealingSchedule::default()),
            SubSolver::Exact,
        ];
        let exact = qq_classical::exact_maxcut(&g).value;
        for s in &solvers {
            let r = solve_subgraph(&g, s, 7).unwrap();
            assert_eq!(r.cut.len(), 9, "{}", s.label());
            assert!((r.cut.value(&g) - r.value).abs() < 1e-9, "{}", s.label());
            assert!(r.value <= exact + 1e-9, "{} exceeded the optimum", s.label());
        }
    }

    #[test]
    fn best_dominates_both_components() {
        let g = small_graph(11);
        let qaoa = QaoaConfig { layers: 2, max_iters: 20, ..QaoaConfig::default() };
        let gw = GwConfig::default();
        let q = solve_subgraph(&g, &SubSolver::Qaoa(qaoa.clone()), 3).unwrap();
        let c = solve_subgraph(&g, &SubSolver::Gw(gw), 3).unwrap();
        let b = solve_subgraph(&g, &SubSolver::Best { qaoa, gw }, 3).unwrap();
        assert!(b.value >= q.value - 1e-12);
        assert!(b.value >= c.value - 1e-12);
    }

    #[test]
    fn grid_never_below_single_cell() {
        let g = small_graph(2);
        let base = QaoaConfig::default();
        let single = solve_subgraph(
            &g,
            &SubSolver::Qaoa(QaoaConfig { layers: 3, rhobeg: 0.5, ..base.clone() }),
            5,
        )
        .unwrap();
        let grid = solve_subgraph(
            &g,
            &SubSolver::QaoaGrid { ps: vec![3], rhobegs: vec![0.5], base: base.clone() },
            5,
        )
        .unwrap();
        // identical cell → identical result
        assert_eq!(grid.value, single.value);
    }

    #[test]
    fn empty_grid_rejected() {
        let g = small_graph(1);
        let r = solve_subgraph(
            &g,
            &SubSolver::QaoaGrid { ps: vec![], rhobegs: vec![0.1], base: QaoaConfig::default() },
            0,
        );
        assert!(r.is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SubSolver::LocalSearch.label(), "local-search");
        assert_eq!(SubSolver::Exact.label(), "exact");
        // the config enum and the backend it builds must agree
        for s in [
            SubSolver::Qaoa(QaoaConfig::default()),
            SubSolver::Gw(GwConfig::default()),
            SubSolver::Random { trials: 2 },
            SubSolver::LocalSearch,
            SubSolver::Annealing(AnnealingSchedule::default()),
            SubSolver::Exact,
        ] {
            assert_eq!(s.label(), s.to_backend().label());
        }
    }

    #[test]
    fn rqaoa_subsolver_inside_qaoa2() {
        // the paper's suggested combination: RQAOA as the QAOA² sub-solver
        let g = qq_graph::generators::erdos_renyi(26, 0.2, WeightKind::Uniform, 17);
        let cfg = crate::Qaoa2Config {
            max_qubits: 9,
            solver: SubSolver::Rqaoa(qq_qaoa::RqaoaConfig {
                qaoa: QaoaConfig { layers: 1, max_iters: 25, ..QaoaConfig::default() },
                stop_size: 4,
            }),
            coarse_solver: SubSolver::LocalSearch,
            parallelism: crate::Parallelism::Sequential,
            seed: 3,
            ..crate::Qaoa2Config::default()
        };
        let res = crate::solve(&g, &cfg).unwrap();
        assert_eq!(res.cut.len(), 26);
        assert!(res.cut_value >= g.total_weight() / 2.0 * 0.9);
    }

    /// A backend defined entirely outside the workspace's solver crates:
    /// proves the dispatch layer is open (no `qq-core` edits needed).
    struct EveryOther;

    impl MaxCutSolver for EveryOther {
        fn label(&self) -> &str {
            "every-other"
        }

        fn solve(&self, g: &Graph, _seed: u64) -> Result<CutResult, SolverError> {
            Ok(CutResult::new(Cut::from_fn(g.num_nodes(), |v| v % 2 == 0), g))
        }

        fn capabilities(&self) -> SolverCaps {
            SolverCaps { max_nodes: Some(64), ..SolverCaps::default() }
        }
    }

    #[test]
    fn custom_backend_plugs_into_subsolver() {
        let g = small_graph(6);
        let s = SubSolver::custom(EveryOther);
        assert_eq!(s.label(), "every-other");
        let r = solve_subgraph(&g, &s, 0).unwrap();
        assert_eq!(r.cut.len(), 9);
        // and through the whole QAOA² pipeline as a coarse solver
        let big = generators::erdos_renyi(40, 0.15, WeightKind::Uniform, 9);
        let cfg = crate::Qaoa2Config {
            max_qubits: 8,
            solver: SubSolver::LocalSearch,
            coarse_solver: SubSolver::custom(EveryOther),
            parallelism: crate::Parallelism::Sequential,
            seed: 0,
            ..crate::Qaoa2Config::default()
        };
        let res = crate::solve(&big, &cfg).unwrap();
        assert_eq!(res.cut.len(), 40);
    }

    #[test]
    fn boxed_trait_object_converts_into_subsolver() {
        let boxed: BoxedSolver = Box::new(EveryOther);
        let s: SubSolver = boxed.into();
        assert_eq!(s.label(), "every-other");
        let g = small_graph(3);
        assert_eq!(solve_subgraph(&g, &s, 1).unwrap().cut.len(), 9);
    }

    #[test]
    fn caps_enforced_before_dispatch() {
        let g = generators::erdos_renyi(70, 0.05, WeightKind::Uniform, 2);
        let r = solve_subgraph(&g, &SubSolver::custom(EveryOther), 0);
        assert!(matches!(r, Err(crate::Qaoa2Error::Solver(_))), "{r:?}");
    }

    #[test]
    fn nested_pools_flatten_to_their_leaves() {
        // a pool inside a pool must expose its leaf members to the
        // engine, or per-class accounting would book the whole inner
        // composite as one quantum backend
        let nested = SubSolver::Pool(vec![
            SubSolver::Pool(vec![SubSolver::Exact, SubSolver::LocalSearch]),
            SubSolver::Random { trials: 2 },
        ]);
        let pool = nested.to_pool();
        let labels: Vec<&str> = pool.members().iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["exact", "local-search", "random"]);
        // flattening does not change what a single-instance solve picks
        let g = small_graph(9);
        let flat_cut = pool.solve(&g, 3).unwrap();
        let nested_cut = nested.to_backend().solve(&g, 3).unwrap();
        assert_eq!(flat_cut.cut, nested_cut.cut);
    }

    #[test]
    fn empty_pool_rejected_before_backend_construction() {
        // solve_subgraph validates, so the empty pool is a config error
        // rather than the HeterogeneousPool constructor panic
        let g = small_graph(1);
        let r = solve_subgraph(&g, &SubSolver::Pool(vec![]), 0);
        assert!(matches!(r, Err(crate::Qaoa2Error::InvalidConfig(_))), "{r:?}");
        // nested inside a non-empty pool too
        let nested = SubSolver::Pool(vec![SubSolver::LocalSearch, SubSolver::Pool(vec![])]);
        assert!(solve_subgraph(&g, &nested, 0).is_err());
    }
}
