//! Pluggable sub-graph solvers — the run-time quantum/classical decision
//! mechanism the paper investigates.

use qq_classical::{annealing::AnnealingSchedule, CutResult};
use qq_graph::{Cut, Graph};
use qq_gw::GwConfig;
use qq_qaoa::QaoaConfig;

/// Which method solves a sub-graph MaxCut.
#[derive(Debug, Clone)]
pub enum SubSolver {
    /// QAOA on a simulated quantum device.
    Qaoa(QaoaConfig),
    /// QAOA grid search over `(p, rhobeg)` — the paper's per-sub-graph
    /// procedure for Fig. 4 ("analyzed with the same parameter grid search
    /// from before, and the QAOA solution with the highest MaxCut value is
    /// stored").
    QaoaGrid {
        /// Layer counts to scan.
        ps: Vec<usize>,
        /// `rhobeg` values to scan.
        rhobegs: Vec<f64>,
        /// Template configuration (seed, shots, policy, …).
        base: QaoaConfig,
    },
    /// Goemans–Williamson (classical).
    Gw(GwConfig),
    /// Solve with both QAOA and GW, keep the better cut — the hybrid
    /// "Best" series of Fig. 4.
    Best {
        /// QAOA settings.
        qaoa: QaoaConfig,
        /// GW settings.
        gw: GwConfig,
    },
    /// Best of `trials` random bipartitions.
    Random {
        /// Number of random cuts to draw.
        trials: usize,
    },
    /// One-exchange local search.
    LocalSearch,
    /// Simulated annealing.
    Annealing(AnnealingSchedule),
    /// Recursive QAOA (Bravyi et al.) — the non-local variant the paper
    /// notes "can also be leveraged using QAOA² to get a good global
    /// solution for very large problems".
    Rqaoa(qq_qaoa::RqaoaConfig),
    /// Exact enumeration (≤ 30 nodes) — ground truth for ablations.
    Exact,
}

impl SubSolver {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SubSolver::Qaoa(_) => "qaoa",
            SubSolver::QaoaGrid { .. } => "qaoa-grid",
            SubSolver::Gw(_) => "gw",
            SubSolver::Best { .. } => "best",
            SubSolver::Random { .. } => "random",
            SubSolver::LocalSearch => "local-search",
            SubSolver::Annealing(_) => "annealing",
            SubSolver::Rqaoa(_) => "rqaoa",
            SubSolver::Exact => "exact",
        }
    }
}

/// Solve one sub-graph. `seed` perturbs every stochastic component so
/// repeated sub-problems explore independently while staying reproducible.
pub fn solve_subgraph(g: &Graph, solver: &SubSolver, seed: u64) -> Result<CutResult, crate::Qaoa2Error> {
    if g.num_nodes() == 0 {
        return Ok(CutResult::new(Cut::new(0), g));
    }
    match solver {
        SubSolver::Qaoa(cfg) => {
            let cfg = QaoaConfig { seed: cfg.seed ^ seed, ..cfg.clone() };
            qq_qaoa::solve(g, &cfg)
                .map(|r| r.best)
                .map_err(|e| crate::Qaoa2Error::Solver(e.to_string()))
        }
        SubSolver::QaoaGrid { ps, rhobegs, base } => {
            if ps.is_empty() || rhobegs.is_empty() {
                return Err(crate::Qaoa2Error::InvalidConfig("empty QAOA grid".into()));
            }
            let mut best: Option<CutResult> = None;
            for &p in ps {
                for &rb in rhobegs {
                    let cfg = QaoaConfig {
                        layers: p,
                        rhobeg: rb,
                        max_iters: QaoaConfig::paper_iterations(p),
                        seed: base.seed ^ seed ^ ((p as u64) << 32) ^ (rb.to_bits() >> 16),
                        ..base.clone()
                    };
                    let r = qq_qaoa::solve(g, &cfg)
                        .map_err(|e| crate::Qaoa2Error::Solver(e.to_string()))?;
                    if best.as_ref().map(|b| r.best.value > b.value).unwrap_or(true) {
                        best = Some(r.best);
                    }
                }
            }
            Ok(best.expect("grid is non-empty"))
        }
        SubSolver::Gw(cfg) => {
            let cfg = GwConfig { seed: cfg.seed ^ seed, ..*cfg };
            Ok(qq_gw::goemans_williamson(g, &cfg).best)
        }
        SubSolver::Best { qaoa, gw } => {
            let q = solve_subgraph(g, &SubSolver::Qaoa(qaoa.clone()), seed)?;
            let c = solve_subgraph(g, &SubSolver::Gw(*gw), seed)?;
            Ok(if q.value >= c.value { q } else { c })
        }
        SubSolver::Random { trials } => {
            Ok(qq_classical::randomized_partitioning(g, (*trials).max(1), seed))
        }
        SubSolver::LocalSearch => Ok(qq_classical::one_exchange(g, seed)),
        SubSolver::Annealing(schedule) => {
            Ok(qq_classical::simulated_annealing(g, *schedule, seed))
        }
        SubSolver::Rqaoa(cfg) => {
            let cfg = qq_qaoa::RqaoaConfig {
                qaoa: QaoaConfig { seed: cfg.qaoa.seed ^ seed, ..cfg.qaoa.clone() },
                ..cfg.clone()
            };
            qq_qaoa::rqaoa_solve(g, &cfg)
                .map(|r| r.best)
                .map_err(|e| crate::Qaoa2Error::Solver(e.to_string()))
        }
        SubSolver::Exact => Ok(qq_classical::exact_maxcut(g)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    fn small_graph(seed: u64) -> Graph {
        generators::erdos_renyi(9, 0.4, WeightKind::Uniform, seed)
    }

    #[test]
    fn every_solver_returns_valid_cut() {
        let g = small_graph(4);
        let solvers = [
            SubSolver::Qaoa(QaoaConfig { layers: 1, max_iters: 12, ..QaoaConfig::default() }),
            SubSolver::Gw(GwConfig::default()),
            SubSolver::Best {
                qaoa: QaoaConfig { layers: 1, max_iters: 12, ..QaoaConfig::default() },
                gw: GwConfig::default(),
            },
            SubSolver::Random { trials: 8 },
            SubSolver::LocalSearch,
            SubSolver::Annealing(AnnealingSchedule::default()),
            SubSolver::Exact,
        ];
        let exact = qq_classical::exact_maxcut(&g).value;
        for s in &solvers {
            let r = solve_subgraph(&g, s, 7).unwrap();
            assert_eq!(r.cut.len(), 9, "{}", s.label());
            assert!((r.cut.value(&g) - r.value).abs() < 1e-9, "{}", s.label());
            assert!(r.value <= exact + 1e-9, "{} exceeded the optimum", s.label());
        }
    }

    #[test]
    fn best_dominates_both_components() {
        let g = small_graph(11);
        let qaoa = QaoaConfig { layers: 2, max_iters: 20, ..QaoaConfig::default() };
        let gw = GwConfig::default();
        let q = solve_subgraph(&g, &SubSolver::Qaoa(qaoa.clone()), 3).unwrap();
        let c = solve_subgraph(&g, &SubSolver::Gw(gw), 3).unwrap();
        let b = solve_subgraph(&g, &SubSolver::Best { qaoa, gw }, 3).unwrap();
        assert!(b.value >= q.value - 1e-12);
        assert!(b.value >= c.value - 1e-12);
    }

    #[test]
    fn grid_never_below_single_cell() {
        let g = small_graph(2);
        let base = QaoaConfig::default();
        let single = solve_subgraph(
            &g,
            &SubSolver::Qaoa(QaoaConfig { layers: 3, rhobeg: 0.5, ..base.clone() }),
            5,
        )
        .unwrap();
        let grid = solve_subgraph(
            &g,
            &SubSolver::QaoaGrid { ps: vec![3], rhobegs: vec![0.5], base: base.clone() },
            5,
        )
        .unwrap();
        // identical cell → identical result
        assert_eq!(grid.value, single.value);
    }

    #[test]
    fn empty_grid_rejected() {
        let g = small_graph(1);
        let r = solve_subgraph(
            &g,
            &SubSolver::QaoaGrid { ps: vec![], rhobegs: vec![0.1], base: QaoaConfig::default() },
            0,
        );
        assert!(r.is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SubSolver::LocalSearch.label(), "local-search");
        assert_eq!(SubSolver::Exact.label(), "exact");
    }

    #[test]
    fn rqaoa_subsolver_inside_qaoa2() {
        // the paper's suggested combination: RQAOA as the QAOA² sub-solver
        let g = qq_graph::generators::erdos_renyi(26, 0.2, WeightKind::Uniform, 17);
        let cfg = crate::Qaoa2Config {
            max_qubits: 9,
            solver: SubSolver::Rqaoa(qq_qaoa::RqaoaConfig {
                qaoa: QaoaConfig { layers: 1, max_iters: 25, ..QaoaConfig::default() },
                stop_size: 4,
            }),
            coarse_solver: SubSolver::LocalSearch,
            parallelism: crate::Parallelism::Sequential,
            seed: 3,
        };
        let res = crate::solve(&g, &cfg).unwrap();
        assert_eq!(res.cut.len(), 26);
        assert!(res.cut_value >= g.total_weight() / 2.0 * 0.9);
    }
}
