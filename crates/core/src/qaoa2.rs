//! The QAOA² driver: divide → solve (through the execution engine) →
//! merge → recurse.
//!
//! Both halves of divide-and-conquer are pluggable configuration:
//! every sub-graph solve — including the base case where the whole
//! graph fits on the device — flows through
//! [`qq_hpc::ExecutionEngine::solve_batch`] ([`Parallelism`] only picks
//! which engine to build, [`SubSolver::to_pool`] the backend pool it
//! routes over), and every divide flows through
//! [`crate::strategy::divide`] ([`PartitionStrategy`] picks the
//! [`qq_graph::Partitioner`], [`RefineConfig`] gates partition
//! refinement and the post-merge boundary polish). This module owns
//! only the recursion and the bookkeeping.

use crate::merge::{apply_flips, build_merge_graph};
use crate::solvers::SubSolver;
use crate::strategy::{self, PartitionStrategy, RefineConfig};
use crate::Qaoa2Error;
use qq_graph::{boundary_nodes, extract_subgraphs, Cut, Graph};
use qq_hpc::{
    ClusterEngine, EngineReport, ExecutionEngine, InlineEngine, SolveJob, ThreadPoolEngine,
};
use std::time::{Duration, Instant};

/// How sub-graph solves are executed. A thin configuration enum: each
/// variant builds one [`ExecutionEngine`] via [`Parallelism::to_engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One after another (reference behaviour, deterministic timing).
    Sequential,
    /// Rayon data parallelism across sub-graphs (shared-memory node).
    Threads,
    /// Through the `qq-hpc` coordinator/worker workflow (Fig. 2): a
    /// dedicated coordinator rank plus this many workers.
    Cluster(usize),
}

impl Parallelism {
    /// Build the execution engine this configuration describes.
    ///
    /// Errors on `Cluster(0)` (a cluster needs at least one worker); the
    /// same check `solve` applies up front.
    pub fn to_engine(&self) -> Result<Box<dyn ExecutionEngine>, Qaoa2Error> {
        match *self {
            Parallelism::Sequential => Ok(Box::new(InlineEngine)),
            Parallelism::Threads => Ok(Box::new(ThreadPoolEngine)),
            Parallelism::Cluster(0) => {
                Err(Qaoa2Error::InvalidConfig("cluster mode needs ≥ 1 worker".into()))
            }
            Parallelism::Cluster(workers) => Ok(Box::new(ClusterEngine::new(workers))),
        }
    }
}

/// QAOA² configuration.
#[derive(Debug, Clone)]
pub struct Qaoa2Config {
    /// Qubit budget `n`: no sub-graph may exceed this many nodes.
    pub max_qubits: usize,
    /// Solver for the first-level sub-graphs (the paper makes the
    /// quantum/classical choice only at the first partitioning).
    pub solver: SubSolver,
    /// Solver for merge-level (coarse) graphs and deeper recursion.
    /// The paper: "In case of further iterations in the QAOA² method, the
    /// classical solution is chosen."
    pub coarse_solver: SubSolver,
    /// Divide strategy: how each level's graph is split into
    /// cap-respecting communities. Fixed strategies apply at every
    /// recursion depth; [`PartitionStrategy::Scheduled`] picks per
    /// level and [`PartitionStrategy::Auto`] per instance (the choice
    /// each level records in [`LevelStats::strategy_effective`]).
    pub partition: PartitionStrategy,
    /// Refinement gates: partition boundary sweeps and the post-merge
    /// boundary cut polish. Off by default.
    pub refine: RefineConfig,
    /// Parallel execution mode for sub-graph solves.
    pub parallelism: Parallelism,
    /// Master seed.
    pub seed: u64,
}

impl Default for Qaoa2Config {
    fn default() -> Self {
        Qaoa2Config {
            max_qubits: 12,
            solver: SubSolver::Qaoa(qq_qaoa::QaoaConfig::default()),
            coarse_solver: SubSolver::Gw(qq_gw::GwConfig::default()),
            partition: PartitionStrategy::GreedyModularity,
            refine: RefineConfig::default(),
            parallelism: Parallelism::Threads,
            seed: 0,
        }
    }
}

/// Statistics for one divide/solve/merge level.
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// Nodes of the graph at this level.
    pub graph_nodes: usize,
    /// Number of sub-graphs after partitioning.
    pub num_subgraphs: usize,
    /// Largest sub-graph size.
    pub max_subgraph: usize,
    /// Label of the partition strategy the configuration requested at
    /// this level (a schedule reports its per-level resolution;
    /// `"auto"` for per-instance selection).
    pub strategy_requested: String,
    /// Label of the strategy that actually produced this level's
    /// partition: the requested one normally, `Auto`'s per-instance
    /// choice, or `"balanced-chunks"` when the singleton-stall guard
    /// replaced a stalled structural strategy.
    pub strategy_effective: String,
    /// `true` when the singleton-stall guard replaced the requested
    /// strategy's output with balanced chunks at this level.
    pub stall_fallback: bool,
    /// `true` when the large-instance gate restricted `Auto`'s
    /// portfolio to `O(m)` strategies and skipped the classical
    /// lookahead at this level (attributed, never silent).
    pub size_gated: bool,
    /// Fraction of the level graph's absolute edge weight crossing
    /// community boundaries — the weight the merge stage must recover.
    pub inter_weight_fraction: f64,
    /// Largest community size over mean community size (1.0 = balanced).
    pub balance: f64,
    /// Community count the strategy produced, before refinement.
    pub communities_before_refine: usize,
    /// Community count after refinement (equal when refinement is off).
    pub communities_after_refine: usize,
    /// Wall-clock spent solving the sub-graphs of this level.
    pub solve_wall: Duration,
    /// Nodes of the resulting coarse graph.
    pub coarse_nodes: usize,
    /// Worker threads the shared pool was configured with while this
    /// level ran (`RAYON_NUM_THREADS` resolution) — attribution for the
    /// parallel divide and fused solve walls. Never fold this into a
    /// determinism digest: it names the execution environment, which
    /// the digest must be invariant to.
    pub pool_threads: usize,
}

/// QAOA² outcome.
#[derive(Debug, Clone)]
pub struct Qaoa2Result {
    /// The global cut on the input graph.
    pub cut: Cut,
    /// Its value.
    pub cut_value: f64,
    /// Per-level statistics, first partitioning first.
    pub levels: Vec<LevelStats>,
    /// One engine dispatch report per `solve_batch` call: index `i <
    /// levels.len()` pairs with `levels[i]`, and the final entry is the
    /// base-case solve of the deepest coarse graph.
    pub engine_reports: Vec<EngineReport>,
    /// Total sub-graphs solved across all levels.
    pub total_subgraphs: usize,
    /// Wall-clock of the whole solve.
    pub wall: Duration,
}

/// Solve MaxCut on `g` with QAOA-in-QAOA.
pub fn solve(g: &Graph, cfg: &Qaoa2Config) -> Result<Qaoa2Result, Qaoa2Error> {
    if cfg.max_qubits < 2 {
        return Err(Qaoa2Error::InvalidConfig("max_qubits must be ≥ 2".into()));
    }
    cfg.solver.validate()?;
    cfg.coarse_solver.validate()?;
    // one engine for the whole solve; the partition strategy resolves
    // per level (schedules) and per instance (auto) inside divide()
    let engine = cfg.parallelism.to_engine()?;
    let started = Instant::now();
    let mut levels = Vec::new();
    let mut engine_reports = Vec::new();
    let mut total_subgraphs = 0usize;
    let cut = solve_level(
        g,
        cfg,
        engine.as_ref(),
        0,
        &mut levels,
        &mut engine_reports,
        &mut total_subgraphs,
    )?;
    let cut_value = cut.value(g);
    Ok(Qaoa2Result {
        cut,
        cut_value,
        levels,
        engine_reports,
        total_subgraphs,
        wall: started.elapsed(),
    })
}

#[allow(clippy::too_many_arguments)]
fn solve_level(
    g: &Graph,
    cfg: &Qaoa2Config,
    engine: &dyn ExecutionEngine,
    depth: usize,
    levels: &mut Vec<LevelStats>,
    engine_reports: &mut Vec<EngineReport>,
    total_subgraphs: &mut usize,
) -> Result<Cut, Qaoa2Error> {
    let config = if depth == 0 { &cfg.solver } else { &cfg.coarse_solver };
    // Build the backend pool once per level; it is shared (read-only)
    // across every sub-graph solve of the level on any engine.
    let pool = config.to_pool();

    // Base case: the whole graph fits on the device. Still a (one-job)
    // engine batch, so capability routing, classical fallback, and
    // dispatch accounting apply uniformly.
    if g.num_nodes() <= cfg.max_qubits {
        *total_subgraphs += 1;
        let jobs = [SolveJob { graph: g, seed: mix_seed(cfg.seed, depth as u64, 0) }];
        let mut out = engine.solve_batch(&pool, &jobs)?;
        engine_reports.push(out.report);
        return Ok(out.results.pop().expect("one job in, one result out").cut);
    }

    // Divide, through the configured strategy. Schedule/auto
    // resolution, validation, the cap check, the singleton-stall
    // fallback, and optional boundary refinement all live behind the
    // strategy layer; the outcome names the strategy that actually
    // produced the partition.
    let divided =
        strategy::divide(g, cfg.max_qubits, &cfg.partition, depth, &cfg.refine, cfg.seed)?;
    let partition = divided.partition;
    let subgraphs = extract_subgraphs(g, &partition);
    let num_subgraphs = subgraphs.len();
    let max_subgraph = subgraphs.iter().map(|s| s.num_nodes()).max().unwrap_or(0);
    *total_subgraphs += num_subgraphs;

    // Solve all sub-graphs through the engine, seeded by (level, index)
    // exactly as the sequential reference would.
    let jobs: Vec<SolveJob<'_>> = subgraphs
        .iter()
        .enumerate()
        .map(|(i, sub)| SolveJob {
            graph: &sub.graph,
            seed: mix_seed(cfg.seed, depth as u64, i as u64),
        })
        .collect();
    let out = engine.solve_batch(&pool, &jobs)?;
    // the engine's own measurement: routing + solves, report assembly
    // excluded — the pre-refactor meaning of "time spent solving"
    let solve_wall = out.report.batch_wall;
    let local_cuts: Vec<Cut> = out.results.into_iter().map(|r| r.cut).collect();
    engine_reports.push(out.report);

    // Merge.
    let coarse = build_merge_graph(g, &partition, &local_cuts);
    levels.push(LevelStats {
        graph_nodes: g.num_nodes(),
        num_subgraphs,
        max_subgraph,
        strategy_requested: divided.requested,
        strategy_effective: divided.effective,
        stall_fallback: divided.stall_fallback,
        size_gated: divided.size_gated,
        inter_weight_fraction: divided.inter_weight_fraction,
        balance: divided.balance,
        communities_before_refine: divided.communities_before_refine,
        communities_after_refine: divided.communities_after_refine,
        solve_wall,
        coarse_nodes: coarse.num_nodes(),
        pool_threads: rayon::current_num_threads(),
    });

    // Recurse on the coarse graph (it has `num_subgraphs` nodes, which is
    // strictly smaller than `g` because every community holds ≥ 1 node and
    // at least one holds ≥ 2 when the graph exceeds the budget).
    let coarse_cut =
        solve_level(&coarse, cfg, engine, depth + 1, levels, engine_reports, total_subgraphs)?;
    let composed = apply_flips(g, &partition, &local_cuts, &coarse_cut);
    if cfg.refine.polish_cut {
        // Post-merge polish: one-exchange restricted to the partition's
        // boundary nodes — the only nodes whose flip status the
        // community-granular merge could have gotten wrong. The climb
        // starts from the composed cut, so the value never decreases.
        let boundary = boundary_nodes(g, &partition);
        Ok(qq_classical::one_exchange_from(g, composed, &boundary).cut)
    } else {
        Ok(composed)
    }
}

/// Splitmix-style seed derivation so every (level, sub-graph) pair gets an
/// independent, reproducible stream. Shared with the strategy layer: the
/// auto-selection lookahead replays these exact streams so its classical
/// evaluation of a candidate partition matches what the pipeline's local
/// solves will actually do.
pub(crate) fn mix_seed(seed: u64, level: u64, index: u64) -> u64 {
    let mut z = seed ^ (level.wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ (index << 17);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    fn fast_cfg(max_qubits: usize) -> Qaoa2Config {
        Qaoa2Config {
            max_qubits,
            solver: SubSolver::LocalSearch,
            coarse_solver: SubSolver::LocalSearch,
            parallelism: Parallelism::Sequential,
            seed: 0,
            ..Qaoa2Config::default()
        }
    }

    #[test]
    fn solves_graph_fitting_on_device_directly() {
        let g = generators::erdos_renyi(10, 0.3, WeightKind::Uniform, 1);
        let res = solve(&g, &fast_cfg(12)).unwrap();
        assert!(res.levels.is_empty());
        assert_eq!(res.total_subgraphs, 1);
        assert!((res.cut.value(&g) - res.cut_value).abs() < 1e-9);
    }

    #[test]
    fn divides_and_merges_larger_graphs() {
        let g = generators::erdos_renyi(60, 0.12, WeightKind::Uniform, 2);
        let res = solve(&g, &fast_cfg(10)).unwrap();
        assert!(!res.levels.is_empty());
        assert!(res.levels[0].max_subgraph <= 10);
        assert_eq!(res.cut.len(), 60);
        // must beat half the edges in expectation terms
        assert!(res.cut_value >= g.total_weight() / 2.0 * 0.9);
    }

    #[test]
    fn beats_random_baseline() {
        let g = generators::erdos_renyi(80, 0.1, WeightKind::Uniform, 5);
        let res = solve(&g, &fast_cfg(12)).unwrap();
        let rnd = qq_classical::randomized_partitioning(&g, 1, 5);
        assert!(res.cut_value > rnd.value, "{} vs {}", res.cut_value, rnd.value);
    }

    #[test]
    fn respects_deep_recursion() {
        // tiny budget forces multiple merge levels
        let g = generators::erdos_renyi(64, 0.15, WeightKind::Uniform, 3);
        let res = solve(&g, &fast_cfg(4)).unwrap();
        assert!(res.levels.len() >= 2, "levels: {}", res.levels.len());
        // coarse sizes strictly decrease
        for w in res.levels.windows(2) {
            assert!(w[1].graph_nodes < w[0].graph_nodes);
        }
    }

    #[test]
    fn thread_and_sequential_agree() {
        let g = generators::erdos_renyi(50, 0.15, WeightKind::Random01, 9);
        let seq = solve(&g, &fast_cfg(8)).unwrap();
        let par =
            solve(&g, &Qaoa2Config { parallelism: Parallelism::Threads, ..fast_cfg(8) }).unwrap();
        assert_eq!(seq.cut, par.cut);
    }

    #[test]
    fn cluster_mode_agrees_with_sequential() {
        let g = generators::erdos_renyi(40, 0.2, WeightKind::Uniform, 11);
        let seq = solve(&g, &fast_cfg(8)).unwrap();
        let clu = solve(&g, &Qaoa2Config { parallelism: Parallelism::Cluster(3), ..fast_cfg(8) })
            .unwrap();
        assert_eq!(seq.cut_value, clu.cut_value);
    }

    #[test]
    fn qaoa_subsolver_end_to_end() {
        let g = generators::erdos_renyi(24, 0.2, WeightKind::Uniform, 13);
        let cfg = Qaoa2Config {
            max_qubits: 8,
            solver: SubSolver::Qaoa(qq_qaoa::QaoaConfig {
                layers: 2,
                max_iters: 25,
                ..qq_qaoa::QaoaConfig::default()
            }),
            coarse_solver: SubSolver::Gw(qq_gw::GwConfig::default()),
            parallelism: Parallelism::Threads,
            seed: 1,
            ..Qaoa2Config::default()
        };
        let res = solve(&g, &cfg).unwrap();
        assert!(res.cut_value > 0.0);
        assert!(res.total_subgraphs >= res.levels.first().map(|l| l.num_subgraphs).unwrap_or(0));
    }

    #[test]
    fn invalid_configs_rejected() {
        let g = generators::ring(6);
        assert!(solve(&g, &fast_cfg(1)).is_err());
        let mut cfg = fast_cfg(4);
        cfg.parallelism = Parallelism::Cluster(0);
        assert!(solve(&g, &cfg).is_err());
        let mut cfg = fast_cfg(4);
        cfg.coarse_solver = SubSolver::Pool(vec![]);
        assert!(solve(&g, &cfg).is_err(), "empty pools are config errors, not panics");
    }

    #[test]
    fn engine_reports_pair_with_levels() {
        let g = generators::erdos_renyi(60, 0.12, WeightKind::Uniform, 2);
        let res = solve(&g, &fast_cfg(10)).unwrap();
        // one report per divide level plus the final base-case solve
        assert_eq!(res.engine_reports.len(), res.levels.len() + 1);
        for (report, level) in res.engine_reports.iter().zip(&res.levels) {
            assert_eq!(report.engine, "inline");
            assert_eq!(
                report.quantum.tasks + report.classical.tasks,
                level.num_subgraphs,
                "every sub-graph dispatched exactly once"
            );
        }
        assert_eq!(res.engine_reports.last().unwrap().classical.tasks, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi(45, 0.15, WeightKind::Random01, 21);
        let a = solve(&g, &fast_cfg(9)).unwrap();
        let b = solve(&g, &fast_cfg(9)).unwrap();
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn size_gate_relaxes_per_level() {
        // Auto re-probes at every recursion level: the 52k-node ring
        // crosses the large-instance gate at level 0, but its coarse
        // merge graph (one node per community) is hundreds of nodes, so
        // every deeper level probes below the gate and gets the full
        // portfolio + classical lookahead back. The per-level LevelStats
        // attribution is the observable contract.
        let g = generators::ring(52_000);
        let cfg = Qaoa2Config { partition: PartitionStrategy::Auto, ..fast_cfg(200) };
        let res = solve(&g, &cfg).unwrap();
        assert!(res.levels.len() >= 2, "ring/cap-200 must recurse: {} levels", res.levels.len());
        assert!(res.levels[0].size_gated, "52k nodes must attribute the gate at level 0");
        for level in &res.levels[1..] {
            assert!(
                !level.size_gated,
                "coarse level of {} nodes re-probes below the gate",
                level.graph_nodes
            );
        }
        // thread-count attribution rides along on every level
        for level in &res.levels {
            assert_eq!(level.pool_threads, rayon::current_num_threads());
        }
    }

    #[test]
    fn exact_on_subgraphs_beats_local_search_on_subgraphs() {
        let g = generators::erdos_renyi(36, 0.2, WeightKind::Random01, 8);
        let ls = solve(&g, &fast_cfg(9)).unwrap();
        let ex = solve(
            &g,
            &Qaoa2Config {
                solver: SubSolver::Exact,
                coarse_solver: SubSolver::Exact,
                ..fast_cfg(9)
            },
        )
        .unwrap();
        // exact local solutions + exact merges ≥ heuristic pipeline is not
        // guaranteed in general (divide-and-conquer is itself a heuristic),
        // but holds on these seeds and guards against regressions.
        assert!(ex.cut_value >= ls.cut_value - 1e-9);
    }
}
