//! Partition-strategy configuration — the divide half of divide-and-
//! conquer, made pluggable and *adaptive*.
//!
//! [`PartitionStrategy`] mirrors [`crate::SubSolver`]'s config-enum
//! pattern for the *divide* step: each variant names a
//! [`Partitioner`] built via [`PartitionStrategy::to_partitioner`],
//! [`PartitionStrategy::Custom`] wraps any external implementation —
//! no `qq-core` edits required to plug in a new way of cutting a
//! graph — and two variants make the choice *adaptive*:
//!
//! * [`PartitionStrategy::Auto`] picks per instance: cheap probes
//!   (density, weight signs — `qq_graph::auto::probe`) order and prune
//!   the candidate portfolio, and every surviving candidate's actual
//!   partition is ranked by a classical one-level **lookahead** — the
//!   cut value a one-exchange compose achieves on it, replaying the
//!   pipeline's own seed streams — with the structural score
//!   (inter-weight fraction, balance) as tie-break. With refinement
//!   on, candidates are scored *after* refinement — the selection
//!   optimizes what the level will actually solve over.
//! * [`PartitionStrategy::Scheduled`] applies a [`PartitionSchedule`]:
//!   an explicit strategy per recursion level with a tail default —
//!   e.g. multilevel coarsening on the input graph, label propagation
//!   on the negative-weight coarse merge graphs below it.
//!
//! [`RefineConfig`] gates the refinement hooks: Kernighan–Lin-style
//! boundary sweeps on every level's partition, optional FM **swap**
//! moves so fully-packed (at-cap) partitions stay refinable
//! ([`qq_graph::refine_partition_with`]), and a boundary-restricted
//! one-exchange polish on every level's composed cut
//! ([`qq_classical::one_exchange_from`]).
//!
//! The orchestrator enters through [`divide`], which resolves the
//! per-level/per-instance choice, adds the uniform guards (validation,
//! cap enforcement, singleton-stall fallback — see
//! [`qq_graph::partition_for_divide`]), and reports partition-quality
//! metrics *with attribution*: [`DivideOutcome`] names both the
//! requested and the effective strategy, so a stalled structural
//! strategy silently replaced by chunks is visible in every level
//! report instead of being mis-credited.

use crate::merge::{apply_flips, build_merge_graph};
use crate::qaoa2::mix_seed;
use crate::Qaoa2Error;
use qq_graph::{
    auto, boundary_nodes, extract_subgraphs, inter_weight_fraction, partition_for_divide,
    refine_partition_with, BalancedChunks, BfsGrow, Cut, DividedPartition, Graph, GreedyModularity,
    LabelPropagation, Multilevel, Partition, PartitionError, Partitioner, RefineOptions, Spectral,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A dynamically supplied partitioner (the escape hatch for strategies
/// defined outside this crate). `Arc` rather than `Box` so the
/// configuration enum stays cheaply cloneable.
pub type SharedPartitioner = Arc<dyn Partitioner>;

/// Which strategy divides a graph into cap-sized communities.
#[derive(Clone, Default)]
pub enum PartitionStrategy {
    /// The paper's divide: CNM greedy modularity, oversized communities
    /// recursively re-divided. The default.
    #[default]
    GreedyModularity,
    /// Node-order chunks of `cap` nodes: structure-free baseline.
    BalancedChunks,
    /// Breadth-first region growing from ascending seed ids: connected,
    /// locality-friendly communities.
    BfsGrow,
    /// Multilevel heavy-edge-matching coarsening (METIS-style, after
    /// Angone et al.); pair with partition refinement for the classic
    /// coarsen → refine pipeline.
    Multilevel,
    /// Deterministic cap-aware label propagation over absolute edge
    /// weights — the structural strategy that stays effective on the
    /// negative-weight coarse merge graphs the recursion produces.
    LabelPropagation,
    /// Recursive Fiedler-vector bisection (power iteration on the
    /// absolute-weight Laplacian, median splits; no external linear
    /// algebra).
    Spectral,
    /// Per-instance auto-selection: probe the graph (density, weight
    /// signs), run the surviving candidate strategies, keep the
    /// partition whose classical one-level lookahead composes the best
    /// cut (ties → inter-weight fraction, balance, portfolio order).
    /// The chosen strategy's label is surfaced as the *effective*
    /// strategy in [`DivideOutcome`] / [`crate::LevelStats`].
    Auto,
    /// An explicit per-recursion-level schedule with a tail default —
    /// see [`PartitionSchedule`].
    Scheduled(Arc<PartitionSchedule>),
    /// Any externally supplied [`Partitioner`]: the open end of the
    /// strategy layer. Build one with [`PartitionStrategy::custom`] or
    /// via the `From` impls for boxed/arc'd trait objects. Outputs are
    /// revalidated (`Partition::try_new`) and cap-checked on every
    /// divide — custom strategies are not trusted.
    Custom(SharedPartitioner),
}

impl std::fmt::Debug for PartitionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionStrategy::GreedyModularity => f.write_str("GreedyModularity"),
            PartitionStrategy::BalancedChunks => f.write_str("BalancedChunks"),
            PartitionStrategy::BfsGrow => f.write_str("BfsGrow"),
            PartitionStrategy::Multilevel => f.write_str("Multilevel"),
            PartitionStrategy::LabelPropagation => f.write_str("LabelPropagation"),
            PartitionStrategy::Spectral => f.write_str("Spectral"),
            PartitionStrategy::Auto => f.write_str("Auto"),
            PartitionStrategy::Scheduled(s) => f.debug_tuple("Scheduled").field(s).finish(),
            PartitionStrategy::Custom(p) => f.debug_tuple("Custom").field(&p.label()).finish(),
        }
    }
}

impl PartitionStrategy {
    /// Short label for reports and benches. Matches the label of the
    /// partitioner [`PartitionStrategy::to_partitioner`] constructs;
    /// per-level labels of a schedule, and the per-instance choice of
    /// `Auto`, surface through [`DivideOutcome`] instead.
    pub fn label(&self) -> &str {
        match self {
            PartitionStrategy::GreedyModularity => "greedy-modularity",
            PartitionStrategy::BalancedChunks => "balanced-chunks",
            PartitionStrategy::BfsGrow => "bfs-grow",
            PartitionStrategy::Multilevel => "multilevel",
            PartitionStrategy::LabelPropagation => "label-propagation",
            PartitionStrategy::Spectral => "spectral",
            PartitionStrategy::Auto => "auto",
            PartitionStrategy::Scheduled(_) => "schedule",
            PartitionStrategy::Custom(p) => p.label(),
        }
    }

    /// Wrap an externally defined strategy.
    pub fn custom(partitioner: impl Partitioner + 'static) -> Self {
        PartitionStrategy::Custom(Arc::new(partitioner))
    }

    /// Wrap a per-level schedule.
    pub fn scheduled(schedule: PartitionSchedule) -> Self {
        PartitionStrategy::Scheduled(Arc::new(schedule))
    }

    /// Construct the partitioner this configuration describes.
    /// Strategies are stateless and `Sync`, so the handle can be shared
    /// freely. `Auto` yields [`AutoPartitioner`] (per-instance
    /// lookahead selection); a schedule yields its **level-0**
    /// strategy's partitioner — per-level resolution lives in
    /// [`divide`], which is what the orchestrator uses.
    pub fn to_partitioner(&self) -> SharedPartitioner {
        match self {
            PartitionStrategy::GreedyModularity => Arc::new(GreedyModularity),
            PartitionStrategy::BalancedChunks => Arc::new(BalancedChunks),
            PartitionStrategy::BfsGrow => Arc::new(BfsGrow),
            PartitionStrategy::Multilevel => Arc::new(Multilevel),
            PartitionStrategy::LabelPropagation => Arc::new(LabelPropagation),
            PartitionStrategy::Spectral => Arc::new(Spectral),
            PartitionStrategy::Auto => Arc::new(AutoPartitioner),
            PartitionStrategy::Scheduled(s) => s.strategy_for(0).to_partitioner(),
            PartitionStrategy::Custom(p) => Arc::clone(p),
        }
    }

    /// Parse a strategy from its [`PartitionStrategy::label`] — the
    /// CLI-facing inverse for examples and benches. Fixed strategies and
    /// `auto` parse; schedules and custom partitioners are programmatic
    /// (build them with [`PartitionStrategy::scheduled`] /
    /// [`PartitionStrategy::custom`]).
    pub fn parse(label: &str) -> Option<PartitionStrategy> {
        match label {
            "greedy-modularity" => Some(PartitionStrategy::GreedyModularity),
            "balanced-chunks" => Some(PartitionStrategy::BalancedChunks),
            "bfs-grow" => Some(PartitionStrategy::BfsGrow),
            "multilevel" => Some(PartitionStrategy::Multilevel),
            "label-propagation" => Some(PartitionStrategy::LabelPropagation),
            "spectral" => Some(PartitionStrategy::Spectral),
            "auto" => Some(PartitionStrategy::Auto),
            _ => None,
        }
    }

    /// All fixed built-in strategies, for benches and exhaustive tests
    /// (`Auto` and schedules select *among* these, so they are not
    /// listed — compare against them explicitly).
    pub fn builtin() -> Vec<PartitionStrategy> {
        vec![
            PartitionStrategy::GreedyModularity,
            PartitionStrategy::BalancedChunks,
            PartitionStrategy::BfsGrow,
            PartitionStrategy::Multilevel,
            PartitionStrategy::LabelPropagation,
            PartitionStrategy::Spectral,
        ]
    }
}

impl From<SharedPartitioner> for PartitionStrategy {
    fn from(p: SharedPartitioner) -> Self {
        PartitionStrategy::Custom(p)
    }
}

impl From<Box<dyn Partitioner>> for PartitionStrategy {
    fn from(p: Box<dyn Partitioner>) -> Self {
        PartitionStrategy::Custom(Arc::from(p))
    }
}

impl From<PartitionSchedule> for PartitionStrategy {
    fn from(s: PartitionSchedule) -> Self {
        PartitionStrategy::scheduled(s)
    }
}

/// An explicit strategy per QAOA² recursion level, with a tail default
/// for every level past the list: `levels[depth]` divides the graph at
/// `depth`, `tail` divides everything deeper.
///
/// The canonical use pairs a structure-exploiting strategy on the
/// input graph with one that stays effective on the negative-weight
/// coarse merge graphs below it:
///
/// ```
/// use qq_core::{PartitionSchedule, PartitionStrategy};
///
/// // multilevel coarsening at level 0, label propagation (robust on
/// // negative-weight merge graphs) everywhere below
/// let schedule = PartitionSchedule::new(
///     vec![PartitionStrategy::Multilevel],
///     PartitionStrategy::LabelPropagation,
/// );
/// let strategy = PartitionStrategy::scheduled(schedule);
/// assert_eq!(strategy.label(), "schedule");
/// ```
#[derive(Debug, Clone)]
pub struct PartitionSchedule {
    levels: Vec<PartitionStrategy>,
    tail: PartitionStrategy,
}

impl PartitionSchedule {
    /// A schedule running `levels[depth]` at each listed depth and
    /// `tail` below the list.
    pub fn new(levels: Vec<PartitionStrategy>, tail: PartitionStrategy) -> Self {
        PartitionSchedule { levels, tail }
    }

    /// A depth-independent schedule (equivalent to the bare strategy).
    pub fn uniform(strategy: PartitionStrategy) -> Self {
        PartitionSchedule { levels: Vec::new(), tail: strategy }
    }

    /// The strategy for recursion depth `depth`.
    pub fn strategy_for(&self, depth: usize) -> &PartitionStrategy {
        self.levels.get(depth).unwrap_or(&self.tail)
    }
}

/// Gates for the refinement hooks. Default: everything off — the
/// divide is exactly the configured strategy and the composed cut is
/// exactly what divide/solve/merge produced (bit-identical to the
/// pre-strategy-layer pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefineConfig {
    /// Kernighan–Lin-style boundary sweeps applied to every level's
    /// partition (`0` = off). Each pass visits every node once; the
    /// sweep stops early when a pass applies no move, so 2–4 passes is
    /// plenty in practice.
    pub partition_passes: usize,
    /// Add an FM-style **swap** sweep to every partition pass:
    /// exchange node pairs between communities, preserving sizes, so
    /// fully-packed (at-cap) partitions — where pure migration is
    /// inadmissible by definition — can still improve. No effect while
    /// `partition_passes` is 0.
    pub swap_moves: bool,
    /// Polish every level's composed cut with a one-exchange restricted
    /// to the partition's boundary nodes. Never decreases the cut value
    /// (the climb starts from the composed cut).
    pub polish_cut: bool,
}

impl RefineConfig {
    /// All refinement hooks on, at the recommended pass budget:
    /// 2 migration + swap sweeps per level plus the cut polish.
    pub fn full() -> Self {
        RefineConfig { partition_passes: 2, swap_moves: true, polish_cut: true }
    }

    /// The partition-sweep options this configuration describes.
    pub fn partition_options(&self) -> RefineOptions {
        RefineOptions { max_passes: self.partition_passes, swap_moves: self.swap_moves }
    }
}

/// A divide outcome: the partition, its attribution (which strategy
/// was requested, which one actually produced the partition), and the
/// quality metrics [`crate::LevelStats`] records.
#[derive(Debug, Clone)]
pub struct DivideOutcome {
    /// The (possibly refined) partition the level solves over.
    pub partition: Partition,
    /// Label of the strategy the configuration requested at this level
    /// (`"auto"` for per-instance selection; a schedule reports its
    /// per-level resolution).
    pub requested: String,
    /// Label of the strategy whose output the partition actually is:
    /// the requested label normally, the per-instance choice under
    /// `Auto`, and `"balanced-chunks"` whenever the singleton-stall
    /// guard replaced a stalled structural strategy.
    pub effective: String,
    /// `true` when the singleton-stall guard replaced the requested
    /// strategy's output with balanced chunks.
    pub stall_fallback: bool,
    /// `true` when the large-instance gate restricted `Auto`'s
    /// portfolio to `O(m)`-per-pass strategies and ranked candidates by
    /// structural score instead of the classical lookahead (see
    /// [`qq_graph::auto::LARGE_INSTANCE_NODES`]). Attributed, not
    /// silent — the same convention as `stall_fallback`.
    pub size_gated: bool,
    /// Community count before refinement (equals `after` when
    /// refinement is off).
    pub communities_before_refine: usize,
    /// Community count after refinement (migration can empty small
    /// communities, which are dropped).
    pub communities_after_refine: usize,
    /// Fraction of the graph's absolute edge weight crossing community
    /// boundaries — what the merge stage must recover.
    pub inter_weight_fraction: f64,
    /// Largest community size over mean community size (1.0 = balanced).
    pub balance: f64,
}

/// Divide the level-`depth` graph with the configured strategy:
/// per-level schedule resolution, per-instance auto-selection, guarded
/// partition ([`partition_for_divide`]), optional refinement sweep,
/// quality metrics with strategy attribution. This is the only
/// partitioning entry point the QAOA² orchestrator uses. `seed` is the
/// solve's master seed: fixed strategies ignore it, while `Auto`'s
/// lookahead replays the exact per-(level, sub-graph) solver streams
/// the pipeline will use, so its candidate evaluation measures the
/// composition that will actually happen.
pub fn divide(
    g: &Graph,
    cap: usize,
    strategy: &PartitionStrategy,
    depth: usize,
    refine: &RefineConfig,
    seed: u64,
) -> Result<DivideOutcome, Qaoa2Error> {
    // unwrap schedules (possibly nested) to this level's strategy
    let mut resolved = strategy;
    while let PartitionStrategy::Scheduled(schedule) = resolved {
        resolved = schedule.strategy_for(depth);
    }
    match resolved {
        PartitionStrategy::Auto => divide_auto(g, cap, depth, refine, seed),
        fixed => {
            let partitioner = fixed.to_partitioner();
            let divided = partition_for_divide(partitioner.as_ref(), g, cap)?;
            Ok(refine_and_measure(g, cap, divided, refine))
        }
    }
}

/// The cut value a cheap classical compose achieves on `p` at level
/// `depth`: solve every community with one-exchange local search on
/// the **same seed streams the pipeline will use**, build the merge
/// graph, solve it by [`lookahead_solve`] (the classical stand-in for
/// the deeper recursion), apply the flips, and (when the configuration
/// polishes composed cuts) replay the boundary-restricted polish.
///
/// This simulates the remainder of the QAOA² pipeline with the
/// cheapest deterministic solver: unlike any divide-time structural
/// proxy, it prices *both* sides of the trade — the weight a partition
/// keeps solvable inside communities and the share of boundary weight
/// the merge stage can still recover — in the units the pipeline is
/// actually judged in. For a local-search configuration it matches the
/// pipeline's composition exactly up to the fidelity budget's horizon:
/// a solve whose recursion bottoms out within `budget` divide levels
/// is simulated verbatim, while deeper levels are approximated (the
/// simulated deeper selections run with a smaller remaining budget
/// than the real ones will have, so they can differ). Stronger
/// (quantum) sub-solvers only improve on the simulated value.
#[cfg(test)]
fn lookahead_value(
    g: &Graph,
    p: &Partition,
    cap: usize,
    depth: usize,
    refine: &RefineConfig,
    seed: u64,
    budget: usize,
) -> f64 {
    lookahead_compose(g, p, cap, depth, refine, seed, budget).value(g)
}

/// One simulated level of the pipeline over a fixed partition: local
/// one-exchange solves on the pipeline's seed streams, recursive
/// coarse solve ([`lookahead_solve`] with `coarse_budget` fidelity),
/// flip application, optional boundary polish. The single shared body
/// of candidate scoring and the simulated deeper solve — sharing it
/// is what guarantees the value candidates are ranked by and the
/// composition the simulation actually produces can never drift
/// apart.
fn lookahead_compose(
    g: &Graph,
    p: &Partition,
    cap: usize,
    depth: usize,
    refine: &RefineConfig,
    seed: u64,
    coarse_budget: usize,
) -> Cut {
    let subgraphs = extract_subgraphs(g, p);
    let local_cuts: Vec<Cut> = subgraphs
        .iter()
        .enumerate()
        .map(|(i, sub)| {
            qq_classical::one_exchange(&sub.graph, mix_seed(seed, depth as u64, i as u64)).cut
        })
        .collect();
    let coarse = build_merge_graph(g, p, &local_cuts);
    let coarse_cut = lookahead_solve(&coarse, cap, depth + 1, refine, seed, coarse_budget);
    let composed = apply_flips(g, p, &local_cuts, &coarse_cut);
    if refine.polish_cut {
        let boundary = boundary_nodes(g, p);
        qq_classical::one_exchange_from(g, composed, &boundary).cut
    } else {
        composed
    }
}

/// How many further divide levels [`lookahead_solve`] simulates at
/// full fidelity before degrading to a single whole-graph exchange.
/// Each simulated divide multiplies the work by the portfolio size
/// (~6), so an unbounded recursion would go exponential on deep
/// small-cap solves; two faithful levels cover the recursion depth of
/// typical cap-vs-size ratios (a level contracts ~cap-fold) while
/// keeping the worst case a few hundred cheap classical solves.
const LOOKAHEAD_BUDGET: usize = 2;

/// Bound on the candidate-partition memo ([`memoized_partition_for_divide`]);
/// when full the whole map is dropped — the cache is an accelerator, not a
/// correctness structure, and a deep solve's working set is far smaller.
const PARTITION_MEMO_CAPACITY: usize = 512;

/// Memo key: graph identity (size + FNV-1a fingerprint of the exact edge
/// list), candidate label, cap. The size fields guard the (astronomically
/// unlikely) 64-bit fingerprint collision between graphs of equal shape.
type PartitionMemoKey = (u64, usize, usize, String, usize);

fn partition_memo() -> &'static Mutex<HashMap<PartitionMemoKey, DividedPartition>> {
    static MEMO: OnceLock<Mutex<HashMap<PartitionMemoKey, DividedPartition>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

static PARTITION_MEMO_HITS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of candidate partitions the auto lookahead reused
/// from the memo instead of recomputing (monotonic; exposed for tests
/// and throughput reporting).
pub fn partition_memo_hits() -> u64 {
    PARTITION_MEMO_HITS.load(Ordering::Relaxed)
}

/// FNV-1a over the node count and the exact `(u, v, w)` edge list. Bit
/// pattern of `w` so the fingerprint is exact (no tolerance classes).
fn graph_fingerprint(g: &Graph) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(g.num_nodes() as u64);
    for e in g.edges() {
        mix(e.u as u64);
        mix(e.v as u64);
        mix(e.w.to_bits());
    }
    h
}

/// [`partition_for_divide`] with a process-wide memo. The guarded output
/// is a pure function of `(graph, strategy label, cap)` — every built-in
/// candidate is deterministic — and the auto lookahead recomputes it
/// heavily: each simulated deeper level re-runs the portfolio on coarse
/// graphs the real recursion will divide again, and sibling candidates
/// often produce identical partitions. Errors are not cached.
fn memoized_partition_for_divide(
    strategy: &dyn Partitioner,
    g: &Graph,
    cap: usize,
) -> Result<DividedPartition, PartitionError> {
    let key =
        (graph_fingerprint(g), g.num_nodes(), g.edges().len(), strategy.label().to_string(), cap);
    if let Some(hit) = partition_memo().lock().expect("partition memo poisoned").get(&key) {
        PARTITION_MEMO_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(hit.clone());
    }
    let divided = partition_for_divide(strategy, g, cap)?;
    let mut memo = partition_memo().lock().expect("partition memo poisoned");
    if memo.len() >= PARTITION_MEMO_CAPACITY {
        memo.clear();
    }
    memo.insert(key, divided.clone());
    Ok(divided)
}

/// Classical stand-in for `solve_level` during the lookahead: graphs
/// within the cap are solved by one-exchange on the exact seed the
/// pipeline's base case would draw; larger graphs divide through the
/// auto portfolio (the same selection the real auto run will make at
/// that level, so the simulation and the eventual solve agree) and
/// recurse, until `budget` faithful divides are spent — beyond that,
/// or when `cap < 2` (which cannot contract and would recurse
/// forever; the orchestrator rejects such caps anyway), the remainder
/// is approximated by one whole-graph exchange.
fn lookahead_solve(
    g: &Graph,
    cap: usize,
    depth: usize,
    refine: &RefineConfig,
    seed: u64,
    budget: usize,
) -> Cut {
    if g.num_nodes() <= cap || cap < 2 || budget == 0 {
        return qq_classical::one_exchange(g, mix_seed(seed, depth as u64, 0)).cut;
    }
    // the selection already composed its winner while scoring it — use
    // that cut rather than re-running the whole composition
    let (_, composed) = divide_auto_budgeted(g, cap, depth, refine, seed, budget - 1)
        .expect("built-in auto candidates cannot fail at cap ≥ 2");
    // a size-gated or all-stalled selection returns no composed cut;
    // approximate the remainder with one whole-graph exchange, exactly
    // as an exhausted budget would
    composed.unwrap_or_else(|| qq_classical::one_exchange(g, mix_seed(seed, depth as u64, 0)).cut)
}

/// Per-instance auto-selection: probe, order and prune the candidate
/// portfolio ([`qq_graph::auto`]), run every surviving candidate
/// through the same guard + refinement pipeline a fixed strategy
/// would get, rank by the classical [`lookahead_value`] (ties →
/// structural score: inter-weight fraction, then balance, then
/// portfolio order), and keep the winner. Scoring *after* refinement
/// means the choice optimizes the partition the level actually solves
/// over.
fn divide_auto(
    g: &Graph,
    cap: usize,
    depth: usize,
    refine: &RefineConfig,
    seed: u64,
) -> Result<DivideOutcome, Qaoa2Error> {
    divide_auto_budgeted(g, cap, depth, refine, seed, LOOKAHEAD_BUDGET).map(|(outcome, _)| outcome)
}

/// [`divide_auto`] with an explicit lookahead fidelity budget (how
/// many further divide levels each candidate evaluation may simulate
/// faithfully — see [`lookahead_solve`]). Also returns the winning
/// candidate's composed lookahead cut (`None` in the cap-1 corner
/// where every candidate stalls, and on size-gated instances, where no
/// lookahead runs), so the simulated deeper solve can reuse it instead
/// of recomposing.
///
/// **Large instances** ([`qq_graph::auto::InstanceProbe::is_large`])
/// take an `O(m)` path end to end: the portfolio is already stripped
/// of superlinear strategies by [`auto::candidates`], candidates are
/// ranked by structural score alone (the classical lookahead would
/// one-exchange the whole million-node graph per candidate), and the
/// partition memo is bypassed (fingerprinting is an `O(m)` scan per
/// probe and the memo would clone million-entry partitions). The gate
/// is attributed in [`DivideOutcome::size_gated`].
///
/// The probe runs per **call** — and the pipeline calls [`divide`] once
/// per recursion level — so gating is per level, not per solve: a
/// million-node level 0 takes the `O(m)` path while its coarse merge
/// graphs, orders of magnitude smaller, re-probe below the gate and get
/// the full portfolio and the classical lookahead back. Each level's
/// `LevelStats::size_gated` records which way its probe went.
fn divide_auto_budgeted(
    g: &Graph,
    cap: usize,
    depth: usize,
    refine: &RefineConfig,
    seed: u64,
    budget: usize,
) -> Result<(DivideOutcome, Option<Cut>), Qaoa2Error> {
    if cap == 0 {
        return Err(PartitionError::InvalidCap.into());
    }
    let probe = auto::probe(g);
    let size_gated = probe.is_large();
    let mut best: Option<(f64, auto::AutoScore, DivideOutcome, Option<Cut>)> = None;
    let mut stalled: Option<DividedPartition> = None;
    for candidate in auto::candidates(&probe) {
        let divided = if size_gated {
            partition_for_divide(candidate.as_ref(), g, cap)?
        } else {
            memoized_partition_for_divide(candidate.as_ref(), g, cap)?
        };
        if divided.stall_fallback {
            // the guard already replaced this candidate's output with
            // balanced chunks — a partition the chunk candidate (always
            // in the portfolio) produces itself, so refining or scoring
            // it would be pure duplicate work; keep one raw as the last
            // resort for the cap-1 corner where every candidate stalls
            if stalled.is_none() {
                stalled = Some(divided);
            }
            continue;
        }
        let outcome = refine_and_measure(g, cap, divided, refine);
        let score = auto::AutoScore {
            inter_weight_fraction: outcome.inter_weight_fraction,
            balance: outcome.balance,
        };
        let (value, composed) = if size_gated {
            (0.0, None)
        } else {
            let c = lookahead_compose(g, &outcome.partition, cap, depth, refine, seed, budget);
            (c.value(g), Some(c))
        };
        let better = match &best {
            None => true,
            Some((bv, bs, _, _)) if size_gated => {
                // no lookahead values to compare — structural score only
                let _ = bv;
                score.better_than(bs)
            }
            Some((bv, bs, _, _)) => {
                value > bv + 1e-9 || ((value - bv).abs() <= 1e-9 && score.better_than(bs))
            }
        };
        if better {
            best = Some((value, score, outcome, composed));
        }
    }
    let (mut outcome, composed) = match best {
        Some((_, _, outcome, composed)) => (outcome, composed),
        None => {
            // cap-1 corner: every candidate stalled; refine the kept
            // fallback only now that it is actually needed
            let divided = stalled.expect("the candidate portfolio is never empty");
            (refine_and_measure(g, cap, divided, refine), None)
        }
    };
    outcome.requested = "auto".to_string();
    outcome.size_gated = size_gated;
    Ok((outcome, composed))
}

/// [`PartitionStrategy::Auto`] as a plain [`Partitioner`] (label
/// `"auto"`), so per-instance selection composes anywhere a fixed
/// strategy does — benches, exhaustive tests, external orchestrators.
/// Runs the same probe → gate → lookahead selection as [`divide`]
/// with refinement off and a fixed lookahead seed (the trait has no
/// solve context); use [`divide`] when the chosen label, refined
/// scoring, or seed-matched lookahead is needed.
#[derive(Debug, Clone, Copy, Default)]
pub struct AutoPartitioner;

/// Seed of [`AutoPartitioner`]'s standalone lookahead: the trait-level
/// entry point must stay a pure function of `(graph, cap)`.
const LOOKAHEAD_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl Partitioner for AutoPartitioner {
    fn label(&self) -> &str {
        "auto"
    }

    fn partition(&self, g: &Graph, cap: usize) -> Result<Partition, qq_graph::PartitionError> {
        if cap == 0 {
            return Err(qq_graph::PartitionError::InvalidCap);
        }
        divide_auto(g, cap, 0, &RefineConfig::default(), LOOKAHEAD_SEED)
            .map(|outcome| outcome.partition)
            .map_err(|e| qq_graph::PartitionError::Backend(e.to_string()))
    }
}

/// Shared tail of every divide: optional refinement sweep + quality
/// metrics, carrying the guard's strategy attribution through.
fn refine_and_measure(
    g: &Graph,
    cap: usize,
    divided: DividedPartition,
    refine: &RefineConfig,
) -> DivideOutcome {
    let DividedPartition { partition, requested, effective, stall_fallback } = divided;
    let communities_before_refine = partition.len();
    let partition = if refine.partition_passes > 0 {
        refine_partition_with(g, &partition, cap, refine.partition_options()).partition
    } else {
        partition
    };
    let communities_after_refine = partition.len();
    let inter = inter_weight_fraction(g, &partition);
    let balance = partition.balance();
    DivideOutcome {
        partition,
        requested,
        effective,
        stall_fallback,
        // the auto path overwrites this after ranking; fixed strategies
        // are whatever the caller asked for, gate or no gate
        size_gated: false,
        communities_before_refine,
        communities_after_refine,
        inter_weight_fraction: inter,
        balance,
    }
}

impl From<PartitionError> for Qaoa2Error {
    fn from(e: PartitionError) -> Self {
        match e {
            PartitionError::InvalidCap => {
                Qaoa2Error::InvalidConfig("community cap must be at least 1".into())
            }
            other => Qaoa2Error::Partition(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn labels_match_partitioner_labels() {
        for s in PartitionStrategy::builtin() {
            assert_eq!(s.label(), s.to_partitioner().label());
        }
        assert_eq!(PartitionStrategy::Auto.label(), "auto");
        assert_eq!(PartitionStrategy::Auto.to_partitioner().label(), "auto");
    }

    #[test]
    fn auto_lookahead_reuses_memoized_partitions() {
        let g = generators::erdos_renyi(30, 0.3, WeightKind::Random01, 77);
        let first =
            divide(&g, 6, &PartitionStrategy::Auto, 0, &RefineConfig::default(), 5).unwrap();
        let after_first = partition_memo_hits();
        // the identical divide replays every candidate on the same graph
        // (and the same coarse graphs in the lookahead) — all memo hits
        let second =
            divide(&g, 6, &PartitionStrategy::Auto, 0, &RefineConfig::default(), 5).unwrap();
        assert!(
            partition_memo_hits() > after_first,
            "repeat auto divide recorded no partition-memo hits"
        );
        // memoization must not change the selection
        assert_eq!(first.partition, second.partition);
        assert_eq!(first.effective, second.effective);
    }

    #[test]
    fn graph_fingerprint_separates_weights_and_shape() {
        let a = generators::ring(8);
        let b = generators::ring(9);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
        let c = generators::erdos_renyi(8, 0.5, WeightKind::Random01, 1);
        let d = generators::erdos_renyi(8, 0.5, WeightKind::Random01, 2);
        assert_ne!(graph_fingerprint(&c), graph_fingerprint(&d));
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&generators::ring(8)));
    }

    #[test]
    fn divide_records_metrics_and_attribution() {
        let g = generators::planted_partition(4, 6, 0.9, 0.02, 8);
        let d =
            divide(&g, 6, &PartitionStrategy::default(), 0, &RefineConfig::default(), 1).unwrap();
        assert_eq!(d.communities_before_refine, d.communities_after_refine);
        assert_eq!(d.partition.len(), 4);
        assert!((0.0..=1.0).contains(&d.inter_weight_fraction));
        assert!((d.balance - 1.0).abs() < 1e-12, "planted blocks are balanced");
        assert_eq!(d.requested, "greedy-modularity");
        assert_eq!(d.effective, "greedy-modularity");
        assert!(!d.stall_fallback);
    }

    #[test]
    fn stalled_structural_strategy_is_attributed_to_chunks() {
        // negative weights: CNM returns singletons, the guard degrades
        // to chunks — and the outcome says so instead of lying
        let g = qq_graph::Graph::from_edges(6, [(0, 1, -1.0), (2, 3, -1.0), (4, 5, -1.0)]).unwrap();
        let d = divide(&g, 3, &PartitionStrategy::GreedyModularity, 0, &RefineConfig::default(), 1)
            .unwrap();
        assert_eq!(d.requested, "greedy-modularity");
        assert_eq!(d.effective, "balanced-chunks");
        assert!(d.stall_fallback);
        assert!(d.partition.len() < 6);
    }

    #[test]
    fn refined_divide_never_raises_inter_fraction() {
        for seed in 0..4 {
            let g = generators::erdos_renyi(42, 0.15, WeightKind::Random01, seed);
            for s in PartitionStrategy::builtin() {
                let plain = divide(&g, 8, &s, 0, &RefineConfig::default(), 1).unwrap();
                let refined = divide(&g, 8, &s, 0, &RefineConfig::full(), 1).unwrap();
                assert!(
                    refined.inter_weight_fraction <= plain.inter_weight_fraction + 1e-9,
                    "{} seed {seed}: {} > {}",
                    s.label(),
                    refined.inter_weight_fraction,
                    plain.inter_weight_fraction,
                );
                assert!(refined.partition.max_community_size() <= 8);
            }
        }
    }

    #[test]
    fn auto_divide_matches_or_beats_every_builtin_lookahead() {
        // auto runs the gated portfolio and keeps the best outcome
        // under the lookahead, so no *candidate* strategy can beat it
        // on that score; on positive sparse graphs the portfolio is
        // the full builtin set
        for seed in 0..4 {
            let g = generators::erdos_renyi(48, 0.12, WeightKind::Random01, 40 + seed);
            for refine in [RefineConfig::default(), RefineConfig::full()] {
                let auto = divide(&g, 8, &PartitionStrategy::Auto, 0, &refine, 1).unwrap();
                let auto_value =
                    lookahead_value(&g, &auto.partition, 8, 0, &refine, 1, LOOKAHEAD_BUDGET);
                for s in PartitionStrategy::builtin() {
                    let fixed = divide(&g, 8, &s, 0, &refine, 1).unwrap();
                    let fixed_value =
                        lookahead_value(&g, &fixed.partition, 8, 0, &refine, 1, LOOKAHEAD_BUDGET);
                    assert!(
                        auto_value >= fixed_value - 1e-9,
                        "seed {seed} {}: auto {auto_value} < {fixed_value}",
                        s.label(),
                    );
                }
                assert_eq!(auto.requested, "auto");
                assert_ne!(auto.effective, "auto", "auto must name its concrete choice");
            }
        }
    }

    #[test]
    fn auto_on_negative_merge_graphs_avoids_the_stall_fallback() {
        // the probe sees the negative weight and drops CNM/HEM from the
        // portfolio; the chosen structural strategy contracts on its own
        let g = qq_graph::Graph::from_edges(
            8,
            [(0, 1, -5.0), (2, 3, -5.0), (4, 5, -5.0), (6, 7, -5.0), (1, 2, 0.5), (5, 6, -0.5)],
        )
        .unwrap();
        let d = divide(&g, 2, &PartitionStrategy::Auto, 1, &RefineConfig::default(), 1).unwrap();
        assert!(!d.stall_fallback, "auto fell back to chunks on a structured merge graph");
        assert!(d.partition.len() < 8);
        assert_eq!(d.requested, "auto");
    }

    #[test]
    fn large_instances_size_gate_the_auto_divide() {
        // ~60k nodes, ~120k edges: over the node gate, far under the
        // point where a debug-mode test would hurt. Auto must take the
        // O(m) path — no lookahead, no memo, no superlinear candidates —
        // and say so in the outcome.
        let g = generators::erdos_renyi_fast(60_000, 6.7e-5, WeightKind::Uniform, 99);
        assert!(auto::probe(&g).is_large(), "test instance must cross the gate");
        let memo_before = partition_memo_hits();
        let d =
            divide(&g, 4_000, &PartitionStrategy::Auto, 0, &RefineConfig::default(), 7).unwrap();
        assert!(d.size_gated, "large instance must attribute the gate");
        assert_eq!(d.requested, "auto");
        assert!(
            matches!(
                d.effective.as_str(),
                "label-propagation" | "multilevel" | "bfs-grow" | "balanced-chunks"
            ),
            "effective strategy {} is not in the O(m) set",
            d.effective
        );
        assert!(d.partition.max_community_size() <= 4_000);
        assert!(d.partition.len() >= 15, "cap 4000 on 60k nodes needs ≥ 15 communities");
        // the gated path must not have touched the partition memo
        assert_eq!(partition_memo_hits(), memo_before);
        // and a second identical divide reproduces the same selection
        let again =
            divide(&g, 4_000, &PartitionStrategy::Auto, 0, &RefineConfig::default(), 7).unwrap();
        assert_eq!(d.effective, again.effective);
        assert_eq!(d.partition, again.partition);

        // small instances stay ungated: lookahead ranking, no gate flag
        let small = generators::erdos_renyi(40, 0.2, WeightKind::Uniform, 1);
        let ds =
            divide(&small, 8, &PartitionStrategy::Auto, 0, &RefineConfig::default(), 7).unwrap();
        assert!(!ds.size_gated);
    }

    #[test]
    fn schedule_resolves_per_level_with_tail_default() {
        let schedule = PartitionSchedule::new(
            vec![PartitionStrategy::Multilevel, PartitionStrategy::BalancedChunks],
            PartitionStrategy::LabelPropagation,
        );
        assert_eq!(schedule.strategy_for(0).label(), "multilevel");
        assert_eq!(schedule.strategy_for(1).label(), "balanced-chunks");
        assert_eq!(schedule.strategy_for(2).label(), "label-propagation");
        assert_eq!(schedule.strategy_for(9).label(), "label-propagation");

        let strategy = PartitionStrategy::scheduled(schedule);
        let g = generators::erdos_renyi(40, 0.15, WeightKind::Uniform, 9);
        let level0 = divide(&g, 8, &strategy, 0, &RefineConfig::default(), 1).unwrap();
        assert_eq!(level0.requested, "multilevel");
        let level1 = divide(&g, 8, &strategy, 1, &RefineConfig::default(), 1).unwrap();
        assert_eq!(level1.requested, "balanced-chunks");
        let deep = divide(&g, 8, &strategy, 5, &RefineConfig::default(), 1).unwrap();
        assert_eq!(deep.requested, "label-propagation");
    }

    #[test]
    fn schedule_can_contain_auto() {
        let strategy = PartitionStrategy::scheduled(PartitionSchedule::new(
            vec![PartitionStrategy::GreedyModularity],
            PartitionStrategy::Auto,
        ));
        let g = generators::erdos_renyi(36, 0.15, WeightKind::Random01, 3);
        let deep = divide(&g, 6, &strategy, 3, &RefineConfig::default(), 1).unwrap();
        assert_eq!(deep.requested, "auto");
        assert_ne!(deep.effective, "auto");
    }

    #[test]
    fn custom_strategy_plugs_in() {
        struct EveryOtherNode;
        impl Partitioner for EveryOtherNode {
            fn label(&self) -> &str {
                "every-other-node"
            }
            fn partition(
                &self,
                g: &Graph,
                _cap: usize,
            ) -> Result<Partition, qq_graph::PartitionError> {
                let n = g.num_nodes();
                let evens: Vec<u32> = (0..n as u32).step_by(2).collect();
                let odds: Vec<u32> = (1..n as u32).step_by(2).collect();
                Partition::try_new(n, vec![evens, odds])
            }
        }
        let s = PartitionStrategy::custom(EveryOtherNode);
        assert_eq!(s.label(), "every-other-node");
        let g = generators::ring(8);
        let d = divide(&g, 4, &s, 0, &RefineConfig::default(), 1).unwrap();
        assert_eq!(d.partition.len(), 2);
        assert_eq!(d.effective, "every-other-node");
        // ring: every edge crosses the even/odd split
        assert!((d.inter_weight_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_strategy_violating_the_cap_is_rejected() {
        struct OneBlob;
        impl Partitioner for OneBlob {
            fn label(&self) -> &str {
                "one-blob"
            }
            fn partition(
                &self,
                g: &Graph,
                _cap: usize,
            ) -> Result<Partition, qq_graph::PartitionError> {
                Partition::try_new(g.num_nodes(), vec![(0..g.num_nodes() as u32).collect()])
            }
        }
        let g = generators::ring(9);
        let s = PartitionStrategy::custom(OneBlob);
        let err = divide(&g, 4, &s, 0, &RefineConfig::default(), 1).unwrap_err();
        assert!(matches!(err, Qaoa2Error::Partition(_)), "{err:?}");
    }

    #[test]
    fn refine_inside_cap_zero_path_is_a_config_error() {
        let g = generators::ring(5);
        for s in [PartitionStrategy::default(), PartitionStrategy::Auto] {
            let err = divide(&g, 0, &s, 0, &RefineConfig::default(), 1).unwrap_err();
            assert!(matches!(err, Qaoa2Error::InvalidConfig(_)), "{err:?}");
        }
    }

    #[test]
    fn swap_refinement_is_gated_by_the_config() {
        // chunks at cap: migration-only refinement cannot act, swap
        // refinement can — visible through the inter-weight fraction
        let g =
            qq_graph::Graph::from_edges(4, [(0, 2, 10.0), (1, 3, 10.0), (0, 1, 1.0), (2, 3, 1.0)])
                .unwrap();
        let s = PartitionStrategy::BalancedChunks;
        let plain = divide(
            &g,
            2,
            &s,
            0,
            &RefineConfig { partition_passes: 4, swap_moves: false, polish_cut: false },
            1,
        )
        .unwrap();
        let swapped = divide(
            &g,
            2,
            &s,
            0,
            &RefineConfig { partition_passes: 4, swap_moves: true, polish_cut: false },
            1,
        )
        .unwrap();
        assert!(
            swapped.inter_weight_fraction < plain.inter_weight_fraction - 0.1,
            "swaps {} vs migration-only {}",
            swapped.inter_weight_fraction,
            plain.inter_weight_fraction
        );
    }
}
