//! Partition-strategy configuration — the divide half of divide-and-
//! conquer, made pluggable.
//!
//! [`PartitionStrategy`] mirrors [`crate::SubSolver`]'s config-enum
//! pattern for the *divide* step: each variant names a
//! [`Partitioner`] built via [`PartitionStrategy::to_partitioner`],
//! and [`PartitionStrategy::Custom`] wraps any external implementation
//! — no `qq-core` edits required to plug in a new way of cutting a
//! graph. [`RefineConfig`] gates the two refinement hooks: a
//! Kernighan–Lin-style boundary sweep on every level's partition
//! ([`qq_graph::refine_partition`]) and a boundary-restricted
//! one-exchange polish on every level's composed cut
//! ([`qq_classical::one_exchange_from`]).
//!
//! The orchestrator enters through [`divide`], which adds the uniform
//! guards (validation, cap enforcement, singleton-stall fallback — see
//! [`qq_graph::partition_for_divide`]) and reports partition-quality
//! metrics for [`crate::LevelStats`].

use crate::Qaoa2Error;
use qq_graph::{
    inter_weight_fraction, partition_for_divide, refine_partition, BalancedChunks, BfsGrow, Graph,
    GreedyModularity, Multilevel, Partition, PartitionError, Partitioner,
};
use std::sync::Arc;

/// A dynamically supplied partitioner (the escape hatch for strategies
/// defined outside this crate). `Arc` rather than `Box` so the
/// configuration enum stays cheaply cloneable.
pub type SharedPartitioner = Arc<dyn Partitioner>;

/// Which strategy divides a graph into cap-sized communities.
#[derive(Clone, Default)]
pub enum PartitionStrategy {
    /// The paper's divide: CNM greedy modularity, oversized communities
    /// recursively re-divided. The default.
    #[default]
    GreedyModularity,
    /// Node-order chunks of `cap` nodes: structure-free baseline.
    BalancedChunks,
    /// Breadth-first region growing from ascending seed ids: connected,
    /// locality-friendly communities.
    BfsGrow,
    /// Multilevel heavy-edge-matching coarsening (METIS-style, after
    /// Angone et al.); pair with partition refinement for the classic
    /// coarsen → refine pipeline.
    Multilevel,
    /// Any externally supplied [`Partitioner`]: the open end of the
    /// strategy layer. Build one with [`PartitionStrategy::custom`] or
    /// via the `From` impls for boxed/arc'd trait objects. Outputs are
    /// revalidated (`Partition::try_new`) and cap-checked on every
    /// divide — custom strategies are not trusted.
    Custom(SharedPartitioner),
}

impl std::fmt::Debug for PartitionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionStrategy::GreedyModularity => f.write_str("GreedyModularity"),
            PartitionStrategy::BalancedChunks => f.write_str("BalancedChunks"),
            PartitionStrategy::BfsGrow => f.write_str("BfsGrow"),
            PartitionStrategy::Multilevel => f.write_str("Multilevel"),
            PartitionStrategy::Custom(p) => f.debug_tuple("Custom").field(&p.label()).finish(),
        }
    }
}

impl PartitionStrategy {
    /// Short label for reports and benches. Matches the label of the
    /// partitioner [`PartitionStrategy::to_partitioner`] constructs.
    pub fn label(&self) -> &str {
        match self {
            PartitionStrategy::GreedyModularity => "greedy-modularity",
            PartitionStrategy::BalancedChunks => "balanced-chunks",
            PartitionStrategy::BfsGrow => "bfs-grow",
            PartitionStrategy::Multilevel => "multilevel",
            PartitionStrategy::Custom(p) => p.label(),
        }
    }

    /// Wrap an externally defined strategy.
    pub fn custom(partitioner: impl Partitioner + 'static) -> Self {
        PartitionStrategy::Custom(Arc::new(partitioner))
    }

    /// Construct the partitioner this configuration describes. Built
    /// once per solve and shared across levels (strategies are
    /// stateless and `Sync`).
    pub fn to_partitioner(&self) -> SharedPartitioner {
        match self {
            PartitionStrategy::GreedyModularity => Arc::new(GreedyModularity),
            PartitionStrategy::BalancedChunks => Arc::new(BalancedChunks),
            PartitionStrategy::BfsGrow => Arc::new(BfsGrow),
            PartitionStrategy::Multilevel => Arc::new(Multilevel),
            PartitionStrategy::Custom(p) => Arc::clone(p),
        }
    }

    /// All built-in strategies, for benches and exhaustive tests.
    pub fn builtin() -> Vec<PartitionStrategy> {
        vec![
            PartitionStrategy::GreedyModularity,
            PartitionStrategy::BalancedChunks,
            PartitionStrategy::BfsGrow,
            PartitionStrategy::Multilevel,
        ]
    }
}

impl From<SharedPartitioner> for PartitionStrategy {
    fn from(p: SharedPartitioner) -> Self {
        PartitionStrategy::Custom(p)
    }
}

impl From<Box<dyn Partitioner>> for PartitionStrategy {
    fn from(p: Box<dyn Partitioner>) -> Self {
        PartitionStrategy::Custom(Arc::from(p))
    }
}

/// Gates for the two refinement hooks. Default: everything off — the
/// divide is exactly the configured strategy and the composed cut is
/// exactly what divide/solve/merge produced (bit-identical to the
/// pre-strategy-layer pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefineConfig {
    /// Kernighan–Lin-style boundary sweeps applied to every level's
    /// partition (`0` = off). Each pass visits every node once; the
    /// sweep stops early when a pass applies no move, so 2–4 passes is
    /// plenty in practice.
    pub partition_passes: usize,
    /// Polish every level's composed cut with a one-exchange restricted
    /// to the partition's boundary nodes. Never decreases the cut value
    /// (the climb starts from the composed cut).
    pub polish_cut: bool,
}

impl RefineConfig {
    /// Both refinement hooks on, at the recommended pass budget.
    pub fn full() -> Self {
        RefineConfig { partition_passes: 2, polish_cut: true }
    }
}

/// A divide outcome: the partition plus the quality metrics
/// [`crate::LevelStats`] records.
#[derive(Debug, Clone)]
pub struct DivideOutcome {
    /// The (possibly refined) partition the level solves over.
    pub partition: Partition,
    /// Community count before refinement (equals `after` when
    /// refinement is off).
    pub communities_before_refine: usize,
    /// Community count after refinement (migration can empty small
    /// communities, which are dropped).
    pub communities_after_refine: usize,
    /// Fraction of the graph's absolute edge weight crossing community
    /// boundaries — what the merge stage must recover.
    pub inter_weight_fraction: f64,
    /// Largest community size over mean community size (1.0 = balanced).
    pub balance: f64,
}

/// Divide `g` with the configured strategy: guarded partition
/// ([`partition_for_divide`]), optional refinement sweep, quality
/// metrics. This is the only partitioning entry point the QAOA²
/// orchestrator uses.
pub fn divide(
    g: &Graph,
    cap: usize,
    strategy: &dyn Partitioner,
    refine: &RefineConfig,
) -> Result<DivideOutcome, Qaoa2Error> {
    let partition = partition_for_divide(strategy, g, cap)?;
    let communities_before_refine = partition.len();
    let partition = if refine.partition_passes > 0 {
        refine_partition(g, &partition, cap, refine.partition_passes).partition
    } else {
        partition
    };
    let communities_after_refine = partition.len();
    let inter = inter_weight_fraction(g, &partition);
    let balance = partition.balance();
    Ok(DivideOutcome {
        partition,
        communities_before_refine,
        communities_after_refine,
        inter_weight_fraction: inter,
        balance,
    })
}

impl From<PartitionError> for Qaoa2Error {
    fn from(e: PartitionError) -> Self {
        match e {
            PartitionError::InvalidCap => {
                Qaoa2Error::InvalidConfig("community cap must be at least 1".into())
            }
            other => Qaoa2Error::Partition(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn labels_match_partitioner_labels() {
        for s in PartitionStrategy::builtin() {
            assert_eq!(s.label(), s.to_partitioner().label());
        }
    }

    #[test]
    fn divide_records_metrics() {
        let g = generators::planted_partition(4, 6, 0.9, 0.02, 8);
        let strategy = PartitionStrategy::default().to_partitioner();
        let d = divide(&g, 6, strategy.as_ref(), &RefineConfig::default()).unwrap();
        assert_eq!(d.communities_before_refine, d.communities_after_refine);
        assert_eq!(d.partition.len(), 4);
        assert!((0.0..=1.0).contains(&d.inter_weight_fraction));
        assert!((d.balance - 1.0).abs() < 1e-12, "planted blocks are balanced");
    }

    #[test]
    fn refined_divide_never_raises_inter_fraction() {
        for seed in 0..4 {
            let g = generators::erdos_renyi(42, 0.15, WeightKind::Random01, seed);
            for s in PartitionStrategy::builtin() {
                let p = s.to_partitioner();
                let plain = divide(&g, 8, p.as_ref(), &RefineConfig::default()).unwrap();
                let refined = divide(&g, 8, p.as_ref(), &RefineConfig::full()).unwrap();
                assert!(
                    refined.inter_weight_fraction <= plain.inter_weight_fraction + 1e-9,
                    "{} seed {seed}: {} > {}",
                    s.label(),
                    refined.inter_weight_fraction,
                    plain.inter_weight_fraction,
                );
                assert!(refined.partition.max_community_size() <= 8);
            }
        }
    }

    #[test]
    fn custom_strategy_plugs_in() {
        struct EveryOtherNode;
        impl Partitioner for EveryOtherNode {
            fn label(&self) -> &str {
                "every-other-node"
            }
            fn partition(
                &self,
                g: &Graph,
                _cap: usize,
            ) -> Result<Partition, qq_graph::PartitionError> {
                let n = g.num_nodes();
                let evens: Vec<u32> = (0..n as u32).step_by(2).collect();
                let odds: Vec<u32> = (1..n as u32).step_by(2).collect();
                Partition::try_new(n, vec![evens, odds])
            }
        }
        let s = PartitionStrategy::custom(EveryOtherNode);
        assert_eq!(s.label(), "every-other-node");
        let g = generators::ring(8);
        let d = divide(&g, 4, s.to_partitioner().as_ref(), &RefineConfig::default()).unwrap();
        assert_eq!(d.partition.len(), 2);
        // ring: every edge crosses the even/odd split
        assert!((d.inter_weight_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_strategy_violating_the_cap_is_rejected() {
        struct OneBlob;
        impl Partitioner for OneBlob {
            fn label(&self) -> &str {
                "one-blob"
            }
            fn partition(
                &self,
                g: &Graph,
                _cap: usize,
            ) -> Result<Partition, qq_graph::PartitionError> {
                Partition::try_new(g.num_nodes(), vec![(0..g.num_nodes() as u32).collect()])
            }
        }
        let g = generators::ring(9);
        let s = PartitionStrategy::custom(OneBlob);
        let err = divide(&g, 4, s.to_partitioner().as_ref(), &RefineConfig::default()).unwrap_err();
        assert!(matches!(err, Qaoa2Error::Partition(_)), "{err:?}");
    }

    #[test]
    fn refine_inside_cap_zero_path_is_a_config_error() {
        let g = generators::ring(5);
        let s = PartitionStrategy::default().to_partitioner();
        let err = divide(&g, 0, s.as_ref(), &RefineConfig::default()).unwrap_err();
        assert!(matches!(err, Qaoa2Error::InvalidConfig(_)), "{err:?}");
    }
}
