//! # qq-core — QAOA-in-QAOA (QAOA²)
//!
//! The paper's primary contribution: solve large MaxCut instances on small
//! (simulated) quantum devices by divide and conquer (Zhou et al.):
//!
//! 1. **Divide** — partition the graph into communities capped at the
//!    qubit budget `n`, through a pluggable [`PartitionStrategy`]
//!    (greedy modularity by default, as in the paper; balanced chunks,
//!    BFS region growing, multilevel coarsening, label propagation,
//!    spectral bisection, per-level schedules, per-instance
//!    auto-selection, or any custom [`Partitioner`]), optionally
//!    refined by a Kernighan–Lin-style boundary sweep with FM swap
//!    moves;
//! 2. **Solve** — solve every sub-graph independently (in parallel across
//!    threads or through the `qq-hpc` coordinator/worker workflow), with a
//!    per-sub-graph choice of solver: QAOA, GW, the best of both (the
//!    hybrid run-time decision the paper investigates), or classical
//!    baselines;
//! 3. **Merge** — build the coarse graph whose nodes are communities and
//!    whose weights are `W_AB = Σ_{(i,j)∈E(A,B)} w_ij·s_i·s_j` (edges in
//!    the local cut flip sign), solve MaxCut on it, and flip every
//!    community assigned `−1`; recurse while the coarse graph exceeds the
//!    qubit budget.
//!
//! ```
//! use qq_core::{solve, Qaoa2Config, SubSolver};
//! use qq_graph::generators;
//!
//! let g = generators::erdos_renyi(60, 0.1, generators::WeightKind::Uniform, 3);
//! let cfg = Qaoa2Config { max_qubits: 8, solver: SubSolver::LocalSearch, ..Qaoa2Config::default() };
//! let res = solve(&g, &cfg).unwrap();
//! assert!(res.cut_value >= 0.0);
//! assert_eq!(res.cut.len(), 60);
//! ```

#![forbid(unsafe_code)]

pub mod merge;
pub mod qaoa2;
pub mod registry;
pub mod sharded;
pub mod solvers;
pub mod strategy;

pub use merge::{apply_flips, build_merge_graph};
pub use qaoa2::{solve, LevelStats, Parallelism, Qaoa2Config, Qaoa2Result};
pub use registry::{SolverFactory, SolverRegistry};
pub use sharded::{ShardedConfig, ShardedSolver};
pub use solvers::{solve_subgraph, solve_with_backend, SharedSolver, SubSolver};
pub use strategy::{
    divide, partition_memo_hits, AutoPartitioner, DivideOutcome, PartitionSchedule,
    PartitionStrategy, RefineConfig, SharedPartitioner,
};

// the backend interface, re-exported so orchestrator users need only this
// crate to implement or consume solvers
pub use qq_graph::{BestOf, BoxedSolver, MaxCutSolver, SolverCaps, SolverError};
// the partition-strategy interface, re-exported for the same reason:
// implementing or wrapping a divide strategy needs these types
pub use qq_graph::{DividedPartition, PartitionError, Partitioner, RefineOptions, Refined};
// the execution layer, re-exported for the same reason: configuring a
// heterogeneous run needs the pool/engine/report types
pub use qq_hpc::{
    BatchOutcome, ClusterEngine, EngineReport, ExecutionEngine, HeterogeneousPool, InlineEngine,
    SolveJob, ThreadPoolEngine, WorkerClass,
};

/// Errors from the QAOA² driver.
#[derive(Debug)]
pub enum Qaoa2Error {
    /// A sub-problem solver failed.
    Solver(String),
    /// The divide step failed (a strategy returned an invalid or
    /// cap-violating partition, or failed outright).
    Partition(String),
    /// Configuration rejected.
    InvalidConfig(String),
}

impl std::fmt::Display for Qaoa2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Qaoa2Error::Solver(m) => write!(f, "sub-solver failed: {m}"),
            Qaoa2Error::Partition(m) => write!(f, "divide step failed: {m}"),
            Qaoa2Error::InvalidConfig(m) => write!(f, "invalid QAOA² config: {m}"),
        }
    }
}

impl std::error::Error for Qaoa2Error {}
