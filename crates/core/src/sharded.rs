//! A sharded [`MaxCutSolver`] backend: the registry's open-dispatch
//! consumer.
//!
//! `ShardedSolver` wraps the divide/solve/merge pipeline *as a backend*:
//! partition the instance at a shard cap, route every shard through the
//! capability-routed execution engine, merge via
//! [`crate::merge::build_merge_graph`]/[`crate::merge::apply_flips`],
//! and recurse on the coarse graph. That makes an unbounded solver out
//! of bounded ones — so it can be registered in the
//! [`crate::SolverRegistry`] (label `"sharded"`), nested inside other
//! composites ([`qq_graph::BestOf`], [`crate::SubSolver::Pool`]), or
//! handed to any orchestrator that only speaks [`MaxCutSolver`].

use crate::qaoa2::{solve, Parallelism, Qaoa2Config};
use crate::solvers::SubSolver;
use crate::strategy::{PartitionStrategy, RefineConfig};
use crate::Qaoa2Error;
use qq_graph::{CutResult, Graph, MaxCutSolver, SolverCaps, SolverError};

/// Configuration of a [`ShardedSolver`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Shard-size cap: no shard exceeds this many nodes (≥ 2).
    pub shard_cap: usize,
    /// Backend (or backend pool) for first-level shards.
    pub solver: SubSolver,
    /// Backend for coarse (merge-level) graphs.
    pub coarse_solver: SubSolver,
    /// Divide strategy shards are cut with.
    pub partition: PartitionStrategy,
    /// Partition/cut refinement gates (off by default).
    pub refine: RefineConfig,
    /// Execution engine the shards run on.
    pub parallelism: Parallelism,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        // classical defaults keep the registry entry cheap and
        // deterministic; callers wanting quantum shards configure
        // `solver` (possibly as a `SubSolver::Pool`)
        ShardedConfig {
            shard_cap: 12,
            solver: SubSolver::LocalSearch,
            coarse_solver: SubSolver::LocalSearch,
            partition: PartitionStrategy::GreedyModularity,
            refine: RefineConfig::default(),
            parallelism: Parallelism::Sequential,
        }
    }
}

/// Divide-and-conquer as a backend (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ShardedSolver {
    /// Shard pipeline configuration.
    pub config: ShardedConfig,
}

impl ShardedSolver {
    /// Sharded solver over `config`.
    pub fn new(config: ShardedConfig) -> Self {
        ShardedSolver { config }
    }
}

impl MaxCutSolver for ShardedSolver {
    fn label(&self) -> &str {
        "sharded"
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<CutResult, SolverError> {
        let cfg = Qaoa2Config {
            max_qubits: self.config.shard_cap,
            solver: self.config.solver.clone(),
            coarse_solver: self.config.coarse_solver.clone(),
            partition: self.config.partition.clone(),
            refine: self.config.refine,
            parallelism: self.config.parallelism,
            seed,
        };
        let res = solve(g, &cfg)?;
        Ok(CutResult { cut: res.cut, value: res.cut_value })
    }

    fn capabilities(&self) -> SolverCaps {
        // an invalid member configuration (e.g. an empty pool) must not
        // panic here: admit nothing and let solve() report the error
        if self.config.solver.validate().is_err() || self.config.coarse_solver.validate().is_err() {
            return SolverCaps { max_nodes: Some(0), ..SolverCaps::default() };
        }
        // sharding exists to lift member size caps: the composite is
        // unbounded, quantum/deterministic as its members compose
        let solver_caps = self.config.solver.to_pool().capabilities();
        let coarse_caps = self.config.coarse_solver.to_pool().capabilities();
        SolverCaps {
            max_nodes: None,
            deterministic: solver_caps.deterministic && coarse_caps.deterministic,
            quantum: solver_caps.quantum || coarse_caps.quantum,
        }
    }
}

impl From<Qaoa2Error> for SolverError {
    fn from(e: Qaoa2Error) -> Self {
        match e {
            Qaoa2Error::InvalidConfig(m) => SolverError::InvalidConfig(m),
            Qaoa2Error::Solver(m) | Qaoa2Error::Partition(m) => SolverError::Backend(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};

    #[test]
    fn sharded_solves_far_beyond_the_shard_cap() {
        let g = generators::erdos_renyi(70, 0.1, WeightKind::Uniform, 3);
        let solver = ShardedSolver::default();
        assert_eq!(solver.capabilities().max_nodes, None);
        let r = solver.solve(&g, 5).unwrap();
        assert_eq!(r.cut.len(), 70);
        assert!((r.cut.value(&g) - r.value).abs() < 1e-9);
        assert!(r.value >= g.total_weight() / 2.0 * 0.9);
    }

    #[test]
    fn sharded_is_deterministic_per_seed() {
        let g = generators::erdos_renyi(50, 0.15, WeightKind::Random01, 8);
        let solver = ShardedSolver::default();
        assert!(solver.capabilities().deterministic);
        let a = solver.solve(&g, 11).unwrap();
        let b = solver.solve(&g, 11).unwrap();
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn sharded_with_heterogeneous_pool_members() {
        // shards routed through a pool: quantum-capped exact + classical
        let cfg = ShardedConfig {
            shard_cap: 10,
            solver: SubSolver::Pool(vec![SubSolver::Exact, SubSolver::LocalSearch]),
            ..ShardedConfig::default()
        };
        let g = generators::erdos_renyi(40, 0.15, WeightKind::Uniform, 6);
        let r = ShardedSolver::new(cfg).solve(&g, 2).unwrap();
        assert_eq!(r.cut.len(), 40);
    }

    #[test]
    fn sharded_with_adaptive_partitioning() {
        // the shard pipeline passes schedules and auto-selection
        // through unchanged: adaptive divides behind the plain
        // MaxCutSolver interface
        use crate::strategy::PartitionSchedule;
        let g = generators::erdos_renyi(60, 0.12, WeightKind::Random01, 17);
        for partition in [
            PartitionStrategy::Auto,
            PartitionStrategy::scheduled(PartitionSchedule::new(
                vec![PartitionStrategy::Multilevel],
                PartitionStrategy::LabelPropagation,
            )),
        ] {
            let cfg = ShardedConfig {
                shard_cap: 10,
                partition,
                refine: RefineConfig::full(),
                ..ShardedConfig::default()
            };
            let solver = ShardedSolver::new(cfg);
            let a = solver.solve(&g, 3).unwrap();
            let b = solver.solve(&g, 3).unwrap();
            assert_eq!(a.cut, b.cut, "adaptive divides must stay deterministic");
            assert_eq!(a.cut.len(), 60);
        }
    }

    #[test]
    fn invalid_shard_cap_is_a_config_error() {
        let cfg = ShardedConfig { shard_cap: 1, ..ShardedConfig::default() };
        let g = generators::ring(8);
        assert!(matches!(ShardedSolver::new(cfg).solve(&g, 0), Err(SolverError::InvalidConfig(_))));
    }

    #[test]
    fn empty_pool_member_is_an_error_not_a_panic() {
        let cfg = ShardedConfig { solver: SubSolver::Pool(vec![]), ..ShardedConfig::default() };
        let solver = ShardedSolver::new(cfg);
        // capabilities must not panic; an unconfigurable solver admits nothing
        assert_eq!(solver.capabilities().max_nodes, Some(0));
        let g = generators::ring(8);
        assert!(matches!(solver.solve(&g, 0), Err(SolverError::InvalidConfig(_))));
    }
}
