//! Label-indexed backend registry.
//!
//! Maps stable string labels (`"qaoa"`, `"gw"`, `"local-search"`, …) to
//! factories producing [`MaxCutSolver`] instances. The bench bins and the
//! umbrella examples use it for CLI-style backend selection; downstream
//! crates use [`SolverRegistry::register`] to add their own backends
//! without editing any dispatch code in this crate — exactly how the
//! built-in `"sharded"` backend ([`crate::sharded::ShardedSolver`])
//! plugs in.

use std::collections::BTreeMap;

use qq_graph::{BoxedSolver, CutResult, Graph};

use crate::solvers::SubSolver;
use crate::Qaoa2Error;

/// Factory producing a fresh backend instance.
pub type SolverFactory = Box<dyn Fn() -> BoxedSolver + Send + Sync>;

/// A label → backend-factory table.
///
/// `BTreeMap` keeps [`SolverRegistry::labels`] sorted so reports and CLIs
/// render deterministically.
#[derive(Default)]
pub struct SolverRegistry {
    factories: BTreeMap<String, SolverFactory>,
}

impl SolverRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        SolverRegistry::default()
    }

    /// A registry pre-loaded with every built-in backend under its
    /// default configuration: `annealing`, `exact`, `gw`, `local-search`,
    /// `qaoa`, `random`, plus the hybrid `best` (QAOA ∨ GW), the paper's
    /// `qaoa-grid` and `rqaoa`, and the divide-and-conquer `sharded`
    /// backend (unbounded instance sizes via the execution engine).
    pub fn with_default_backends() -> Self {
        let mut r = SolverRegistry::empty();
        r.register("sharded", || Box::new(crate::sharded::ShardedSolver::default()));
        for config in [
            SubSolver::Qaoa(qq_qaoa::QaoaConfig::default()),
            SubSolver::QaoaGrid {
                ps: vec![2, 4],
                rhobegs: vec![0.3, 0.5],
                base: qq_qaoa::QaoaConfig::default(),
            },
            SubSolver::Gw(qq_gw::GwConfig::default()),
            SubSolver::Best {
                qaoa: qq_qaoa::QaoaConfig::default(),
                gw: qq_gw::GwConfig::default(),
            },
            SubSolver::Random { trials: 16 },
            SubSolver::LocalSearch,
            SubSolver::Annealing(qq_classical::annealing::AnnealingSchedule::default()),
            SubSolver::Rqaoa(qq_qaoa::RqaoaConfig::default()),
            SubSolver::Exact,
        ] {
            r.register_config(config);
        }
        r
    }

    /// Register `factory` under `label`, replacing any previous entry.
    pub fn register(
        &mut self,
        label: impl Into<String>,
        factory: impl Fn() -> BoxedSolver + Send + Sync + 'static,
    ) {
        self.factories.insert(label.into(), Box::new(factory));
    }

    /// Register a [`SubSolver`] configuration under its own label.
    pub fn register_config(&mut self, config: SubSolver) {
        let label = config.label().to_string();
        // `Arc<dyn MaxCutSolver>` is itself a `MaxCutSolver`, so the shared
        // handle boxes straight into the factory output
        self.register(label, move || Box::new(config.to_backend()));
    }

    /// Instantiate the backend registered under `label`.
    pub fn create(&self, label: &str) -> Option<BoxedSolver> {
        self.factories.get(label).map(|f| f())
    }

    /// All registered labels, sorted.
    pub fn labels(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }

    /// Look up `label` and solve `g` with it.
    pub fn solve(&self, label: &str, g: &Graph, seed: u64) -> Result<CutResult, Qaoa2Error> {
        let backend = self.create(label).ok_or_else(|| {
            Qaoa2Error::InvalidConfig(format!(
                "no backend registered under '{label}' (known: {})",
                self.labels().join(", ")
            ))
        })?;
        crate::solvers::solve_with_backend(g, &backend, seed)
    }
}

// factories are opaque closures; print the labels
impl std::fmt::Debug for SolverRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverRegistry").field("labels", &self.labels()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qq_graph::generators::{self, WeightKind};
    use qq_graph::{Cut, MaxCutSolver, SolverError};

    #[test]
    fn default_registry_lists_all_builtins() {
        let r = SolverRegistry::with_default_backends();
        assert_eq!(
            r.labels(),
            vec![
                "annealing",
                "best",
                "exact",
                "gw",
                "local-search",
                "qaoa",
                "qaoa-grid",
                "random",
                "rqaoa",
                "sharded"
            ]
        );
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn sharded_backend_resolves_and_scales_past_member_caps() {
        let r = SolverRegistry::with_default_backends();
        let sharded = r.create("sharded").expect("registered by default");
        assert_eq!(sharded.label(), "sharded");
        assert_eq!(sharded.capabilities().max_nodes, None);
        // far beyond the default 12-node shard cap
        let g = generators::erdos_renyi(64, 0.1, WeightKind::Uniform, 4);
        let res = r.solve("sharded", &g, 1).unwrap();
        assert_eq!(res.cut.len(), 64);
        assert!(res.value > 0.0);
    }

    #[test]
    fn unknown_label_is_a_config_error() {
        let r = SolverRegistry::with_default_backends();
        let g = generators::ring(6);
        assert!(matches!(r.solve("no-such", &g, 0), Err(Qaoa2Error::InvalidConfig(_))));
        assert!(r.create("no-such").is_none());
    }

    #[test]
    fn registering_a_new_backend_needs_no_core_edits() {
        struct AllOnOneSide;
        impl MaxCutSolver for AllOnOneSide {
            fn label(&self) -> &str {
                "all-one-side"
            }
            fn solve(&self, g: &Graph, _seed: u64) -> Result<CutResult, SolverError> {
                Ok(CutResult::new(Cut::new(g.num_nodes()), g))
            }
        }
        let mut r = SolverRegistry::empty();
        r.register("all-one-side", || Box::new(AllOnOneSide));
        let g = generators::erdos_renyi(12, 0.3, WeightKind::Uniform, 1);
        let res = r.solve("all-one-side", &g, 0).unwrap();
        assert_eq!(res.value, 0.0, "everything on one side cuts nothing");
    }

    #[test]
    fn create_returns_working_instances() {
        let r = SolverRegistry::with_default_backends();
        let g = generators::erdos_renyi(8, 0.5, WeightKind::Uniform, 3);
        let solver = r.create("local-search").unwrap();
        let a = solver.solve(&g, 9).unwrap();
        assert_eq!(a.cut.len(), 8);
        assert_eq!(solver.label(), "local-search");
    }
}
