//! The synthesis engine (Classiq substitute): one high-level MaxCut model
//! lowered with different optimization preferences, with the resulting
//! circuit metrics — the depth/gate trade-off the paper delegates to the
//! Classiq platform.
//!
//! ```text
//! cargo run --release --example circuit_synthesis
//! ```

use qaoa2_suite::prelude::*;
use qq_circuit::{Preference, Synthesizer};

fn main() {
    let g = generators::erdos_renyi(10, 0.6, generators::WeightKind::Uniform, 12);
    let model = CostModel::from_maxcut(&g);
    let params = AnsatzParams::new(vec![0.4, 0.7], vec![0.3, 0.5]);

    println!("high-level model: {} qubits, {} ZZ terms\n", model.num_qubits, model.terms.len());
    println!("{:>12} {:>8} {:>8} {:>10}", "preference", "depth", "gates", "two-qubit");
    for (name, pref) in [
        ("none", Preference::None),
        ("depth", Preference::Depth),
        ("gate-count", Preference::GateCount),
    ] {
        let c = Synthesizer::new(pref).qaoa_ansatz(&model, &params);
        println!("{:>12} {:>8} {:>8} {:>10}", name, c.depth(), c.gate_count(), c.two_qubit_count());
    }

    // All three lower to the same state (up to global phase).
    let naive = Synthesizer::new(Preference::None).qaoa_ansatz(&model, &params);
    let depth = Synthesizer::new(Preference::Depth).qaoa_ansatz(&model, &params);
    let a = qq_circuit::exec::run_statevector(&naive);
    let b = qq_circuit::exec::run_statevector(&depth);
    let mut overlap = C64::ZERO;
    for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
        overlap += x.conj() * *y;
    }
    println!("\n|⟨ψ_none|ψ_depth⟩| = {:.12} (semantics preserved)", overlap.abs());
}
