//! Gset-format instances end-to-end: generate workloads, persist them
//! in the Gset interchange format (the format the published G1…G81
//! MaxCut benchmarks ship in), read them back, and run QAOA² under
//! registered partition strategies — approximation ratios against
//! the exact optimum (small instances) or the Goemans–Williamson
//! rounding (large ones), recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example gset_pipeline                     # every strategy
//! cargo run --release --example gset_pipeline -- --strategy auto  # one strategy
//! ```
//!
//! `--strategy` accepts any built-in label (`greedy-modularity`,
//! `balanced-chunks`, `bfs-grow`, `multilevel`, `label-propagation`,
//! `spectral`), `auto` (per-instance selection; the per-level choices
//! are printed), or `all` (the default).

use qaoa2_suite::prelude::*;
use qq_core::{PartitionStrategy, RefineConfig};
use qq_graph::io::{read_gset, write_gset};
use std::io::BufReader;

/// Strategies selected by the `--strategy` flag (default: all).
fn selected_strategies() -> Vec<PartitionStrategy> {
    let mut args = std::env::args().skip(1);
    let mut requested = String::from("all");
    while let Some(arg) = args.next() {
        if arg == "--strategy" {
            requested = args.next().unwrap_or_else(|| {
                eprintln!("--strategy needs a value (a strategy label, auto, or all)");
                std::process::exit(2);
            });
        }
    }
    if requested == "all" {
        let mut all = PartitionStrategy::builtin();
        all.push(PartitionStrategy::Auto);
        return all;
    }
    if requested == "auto" {
        return vec![PartitionStrategy::Auto];
    }
    match PartitionStrategy::builtin().into_iter().find(|s| s.label() == requested) {
        Some(s) => vec![s],
        None => {
            eprintln!(
                "unknown strategy {requested:?}; expected one of {:?}, auto, or all",
                PartitionStrategy::builtin()
                    .iter()
                    .map(|s| s.label().to_string())
                    .collect::<Vec<_>>()
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let strategies = selected_strategies();
    let instances: Vec<(&str, Graph)> = vec![
        ("er24", generators::erdos_renyi(24, 0.25, generators::WeightKind::Uniform, 42)),
        ("planted48", generators::planted_partition(6, 8, 0.9, 0.05, 11)),
        ("er120", generators::erdos_renyi(120, 0.06, generators::WeightKind::Uniform, 5)),
    ];
    let dir = std::env::temp_dir().join("qaoa2-gset-pipeline");
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    println!("Gset round trip + QAOA² per partition strategy (cap 10, local-search sub-solves)");
    println!(
        "{:<10} {:>5} {:>6}  {:<18} {:>9} {:>9} {:>7}",
        "instance", "nodes", "edges", "strategy", "cut", "baseline", "ratio"
    );
    for (name, g) in &instances {
        // out through the Gset writer to a real file, back through the
        // explicit Gset reader — the door published instances use
        let path = dir.join(format!("{name}.gset"));
        let mut file = std::fs::File::create(&path).expect("create instance file");
        write_gset(g, &mut file).expect("serialize instance");
        let file = std::fs::File::open(&path).expect("reopen instance file");
        let loaded = read_gset(BufReader::new(file)).expect("parse Gset instance");
        assert_eq!(loaded.num_nodes(), g.num_nodes(), "{name}: round trip changed the graph");
        assert_eq!(loaded.num_edges(), g.num_edges(), "{name}: round trip changed the graph");

        // baseline: certified optimum where enumeration is feasible,
        // GW rounding (with its SDP bound) beyond that
        let (baseline, baseline_kind) = if loaded.num_nodes() <= 26 {
            (exact_maxcut(&loaded).value, "exact")
        } else {
            (goemans_williamson(&loaded, &GwConfig::default()).best.value, "gw")
        };

        for strategy in &strategies {
            let cfg = Qaoa2Config {
                max_qubits: 10,
                solver: SubSolver::LocalSearch,
                coarse_solver: SubSolver::LocalSearch,
                partition: strategy.clone(),
                refine: RefineConfig::full(),
                parallelism: Parallelism::Sequential,
                seed: 1,
            };
            let res = qaoa2_solve(&loaded, &cfg).expect("valid configuration");
            // adaptive strategies resolve per level: show what ran
            let detail = if res.levels.iter().any(|l| l.strategy_effective != strategy.label()) {
                let effective: Vec<&str> =
                    res.levels.iter().map(|l| l.strategy_effective.as_str()).collect();
                format!("  [levels: {}]", effective.join(" → "))
            } else {
                String::new()
            };
            println!(
                "{:<10} {:>5} {:>6}  {:<18} {:>9.2} {:>9.2} {:>7.3}  (vs {}){}",
                name,
                loaded.num_nodes(),
                loaded.num_edges(),
                strategy.label(),
                res.cut_value,
                baseline,
                res.cut_value / baseline,
                baseline_kind,
                detail,
            );
        }
    }
    println!("\ninstances persisted under {}", dir.display());
}
