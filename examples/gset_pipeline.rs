//! Gset-format instances end-to-end: generate workloads, persist them
//! in the Gset interchange format (the format the published G1…G81
//! MaxCut benchmarks ship in), read them back, and run QAOA² under
//! every registered partition strategy — approximation ratios against
//! the exact optimum (small instances) or the Goemans–Williamson
//! rounding (large ones), recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example gset_pipeline
//! ```

use qaoa2_suite::prelude::*;
use qq_core::{PartitionStrategy, RefineConfig};
use qq_graph::io::{read_gset, write_gset};
use std::io::BufReader;

fn main() {
    let instances: Vec<(&str, Graph)> = vec![
        ("er24", generators::erdos_renyi(24, 0.25, generators::WeightKind::Uniform, 42)),
        ("planted48", generators::planted_partition(6, 8, 0.9, 0.05, 11)),
        ("er120", generators::erdos_renyi(120, 0.06, generators::WeightKind::Uniform, 5)),
    ];
    let dir = std::env::temp_dir().join("qaoa2-gset-pipeline");
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    println!("Gset round trip + QAOA² per partition strategy (cap 10, local-search sub-solves)");
    println!(
        "{:<10} {:>5} {:>6}  {:<18} {:>9} {:>9} {:>7}",
        "instance", "nodes", "edges", "strategy", "cut", "baseline", "ratio"
    );
    for (name, g) in &instances {
        // out through the Gset writer to a real file, back through the
        // explicit Gset reader — the door published instances use
        let path = dir.join(format!("{name}.gset"));
        let mut file = std::fs::File::create(&path).expect("create instance file");
        write_gset(g, &mut file).expect("serialize instance");
        let file = std::fs::File::open(&path).expect("reopen instance file");
        let loaded = read_gset(BufReader::new(file)).expect("parse Gset instance");
        assert_eq!(loaded.num_nodes(), g.num_nodes(), "{name}: round trip changed the graph");
        assert_eq!(loaded.num_edges(), g.num_edges(), "{name}: round trip changed the graph");

        // baseline: certified optimum where enumeration is feasible,
        // GW rounding (with its SDP bound) beyond that
        let (baseline, baseline_kind) = if loaded.num_nodes() <= 26 {
            (exact_maxcut(&loaded).value, "exact")
        } else {
            (goemans_williamson(&loaded, &GwConfig::default()).best.value, "gw")
        };

        for strategy in PartitionStrategy::builtin() {
            let cfg = Qaoa2Config {
                max_qubits: 10,
                solver: SubSolver::LocalSearch,
                coarse_solver: SubSolver::LocalSearch,
                partition: strategy.clone(),
                refine: RefineConfig::full(),
                parallelism: Parallelism::Sequential,
                seed: 1,
            };
            let res = qaoa2_solve(&loaded, &cfg).expect("valid configuration");
            println!(
                "{:<10} {:>5} {:>6}  {:<18} {:>9.2} {:>9.2} {:>7.3}  (vs {})",
                name,
                loaded.num_nodes(),
                loaded.num_edges(),
                strategy.label(),
                res.cut_value,
                baseline,
                res.cut_value / baseline,
                baseline_kind,
            );
        }
    }
    println!("\ninstances persisted under {}", dir.display());
}
