//! The paper's central question in miniature: for which graphs and which
//! `(p, rhobeg)` parameterizations does QAOA beat GW? This mini-sweep
//! mirrors Fig. 3 on two instances and prints the per-grid-point verdicts
//! — the "knowledge base" that motivates the hybrid sub-graph decision.
//!
//! ```text
//! cargo run --release --example subgraph_advantage
//! ```

use qaoa2_suite::prelude::*;

fn main() {
    for (label, edge_prob) in [("sparse (p_edge = 0.1)", 0.1), ("dense (p_edge = 0.5)", 0.5)] {
        let g = generators::erdos_renyi(12, edge_prob, generators::WeightKind::Uniform, 9);
        let gw = goemans_williamson(&g, &GwConfig::default());
        println!("== {label}: {} edges, GW mean-of-30 = {:.3} ==", g.num_edges(), gw.mean_value);
        println!("{:>4} {:>8} {:>10} {:>10}", "p", "rhobeg", "QAOA cut", "verdict");
        let mut wins = 0;
        let mut total = 0;
        for p in [3usize, 4, 5, 6] {
            for rhobeg in [0.1, 0.3, 0.5] {
                let cfg = QaoaConfig::grid_cell(p, rhobeg, 11);
                let r = qaoa_solve(&g, &cfg).expect("12 qubits fit");
                let verdict = if r.best.value > gw.mean_value {
                    wins += 1;
                    "QAOA wins"
                } else if r.best.value >= 0.95 * gw.mean_value {
                    "within 5%"
                } else {
                    "GW wins"
                };
                total += 1;
                println!("{:>4} {:>8.1} {:>10.3} {:>10}", p, rhobeg, r.best.value, verdict);
            }
        }
        println!("QAOA won {wins}/{total} grid points\n");
    }
    println!(
        "the paper's Fig. 3 finding at scale: QAOA's partial advantage concentrates on\n\
         graphs with small edge probability and large (rhobeg, p) grid points."
    );
}
