//! The supercomputer workflow end to end: SLURM-like batch of hybrid jobs
//! (Fig. 1), the MPI-like coordinator distributing QAOA² sub-graphs to
//! worker ranks (Fig. 2), and the capability-routed heterogeneous pool —
//! a capped quantum backend plus a classical fallback behind one
//! `ExecutionEngine::solve_batch` call.
//!
//! ```text
//! cargo run --release --example hpc_workflow
//! ```

use qaoa2_suite::prelude::*;
use qq_core::solve_subgraph;
use qq_graph::{extract_subgraphs, partition_with_cap};
use qq_hpc::scheduler::{fig1_hetjob_scenario, Cluster};

fn main() {
    // --- Fig. 1: heterogeneous jobs on a 1-QPU cluster ---
    let (mono, het) = fig1_hetjob_scenario(5, 40, 8, Cluster { cpu_nodes: 8, qpus: 1 });
    println!("SLURM-style scheduling of 5 hybrid jobs (classical 40 ticks, quantum 8 ticks):");
    // the cluster above has one QPU, so an idle fraction always exists
    let idle_pct = |o: &qq_hpc::scheduler::ScheduleOutcome| {
        o.qpu_idle_fraction().expect("cluster has a QPU") * 100.0
    };
    println!("  monolithic:    makespan {:>4}, QPU idle {:.1}%", mono.makespan, idle_pct(&mono));
    println!("  heterogeneous: makespan {:>4}, QPU idle {:.1}%", het.makespan, idle_pct(&het));

    // --- Fig. 2: coordinator rank distributing sub-graph solves ---
    let g = generators::erdos_renyi(120, 0.12, generators::WeightKind::Uniform, 8);
    let partition = partition_with_cap(&g, 9);
    let subgraphs = extract_subgraphs(&g, &partition);
    println!(
        "\ncoordinator workflow: {} nodes → {} sub-graphs (≤ 9 qubits each)",
        g.num_nodes(),
        subgraphs.len()
    );
    let solver = SubSolver::Qaoa(QaoaConfig { layers: 2, max_iters: 25, ..QaoaConfig::default() });
    let report = master_worker(2, subgraphs, |i, sub| {
        solve_subgraph(&sub.graph, &solver, i as u64).expect("sub-solve succeeds").value
    });
    let total: f64 = report.results.iter().sum();
    println!(
        "  2 workers solved {} tasks in {:.2?} (efficiency {:.2}), Σ sub-cut values = {:.1}",
        report.results.len(),
        report.wall,
        report.efficiency(),
        total
    );
    for (w, stats) in report.workers.iter().enumerate() {
        println!("  worker {}: {} tasks, busy {:.2?}", w + 1, stats.tasks, stats.busy);
    }

    // --- heterogeneous pool: QAOA capped at 6 qubits + GW fallback ---
    // Sub-graphs the quantum cap admits go to the QPU-class backend;
    // larger ones degrade to the classical member instead of erroring.
    let qaoa = SubSolver::Qaoa(QaoaConfig { layers: 2, max_iters: 20, ..QaoaConfig::default() });
    let capped = SubSolver::custom(CappedQuantum { inner: qaoa.to_backend(), cap: 6 });
    let cfg = Qaoa2Config {
        max_qubits: 10,
        solver: SubSolver::Pool(vec![capped, SubSolver::Gw(GwConfig::default())]),
        coarse_solver: SubSolver::Gw(GwConfig::default()),
        parallelism: Parallelism::Cluster(2),
        seed: 8,
        ..Qaoa2Config::default()
    };
    let res = qaoa2_solve(&g, &cfg).expect("heterogeneous solve succeeds");
    let level0 = &res.engine_reports[0];
    println!(
        "\nheterogeneous pool on the {} engine: cut {:.1} across {} sub-graphs",
        level0.engine, res.cut_value, res.levels[0].num_subgraphs
    );
    println!(
        "  QPU class: {} tasks (busy {:.2?});  CPU class: {} tasks (busy {:.2?}), {} over-cap fallbacks",
        level0.quantum.tasks,
        level0.quantum.busy,
        level0.classical.tasks,
        level0.classical.busy,
        level0.fallbacks
    );
    if let Some(idle) = level0.qpu_idle_fraction() {
        println!("  replayed QPU idle fraction (Fig. 1 metric): {:.1}%", idle * 100.0);
    }
}

/// A qubit ceiling on any backend: the device-budget wrapper that
/// turns a solver into a QPU-class pool member.
struct CappedQuantum {
    inner: qq_core::SharedSolver,
    cap: usize,
}

impl MaxCutSolver for CappedQuantum {
    fn label(&self) -> &str {
        "capped-qaoa"
    }

    fn solve(&self, g: &Graph, seed: u64) -> Result<qq_graph::CutResult, SolverError> {
        self.check_instance(g)?;
        self.inner.solve(g, seed)
    }

    fn capabilities(&self) -> SolverCaps {
        SolverCaps { max_nodes: Some(self.cap), ..self.inner.capabilities() }
    }
}
