//! Quickstart: solve one MaxCut instance three ways — QAOA on the
//! simulated device, Goemans–Williamson, and exact enumeration — and
//! compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qaoa2_suite::prelude::*;

fn main() {
    // A 14-node Erdős–Rényi graph like the paper's small instances.
    let g = generators::erdos_renyi(14, 0.3, generators::WeightKind::Uniform, 42);
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // Exact optimum (feasible at this size) for reference.
    let exact = exact_maxcut(&g);
    println!("exact optimum:        {:.3}", exact.value);

    // Goemans–Williamson: SDP + 30 hyperplane slicings (paper settings).
    let gw = goemans_williamson(&g, &GwConfig::default());
    println!(
        "GW: best {:.3}, mean-of-30 {:.3}, SDP bound {:.3}",
        gw.best.value, gw.mean_value, gw.sdp_bound
    );

    // QAOA with the paper's most successful grid point (p = 6, rhobeg 0.5).
    let cfg = QaoaConfig::grid_cell(6, 0.5, 7);
    let qaoa = qaoa_solve(&g, &cfg).expect("graph fits on the simulated device");
    println!(
        "QAOA (p=6, rhobeg=0.5): cut {:.3}, ⟨H_C⟩ {:.3}, {} optimizer evals",
        qaoa.best.value, qaoa.expectation, qaoa.evals
    );
    println!(
        "ansatz circuit: depth {}, {} gates ({} two-qubit)",
        qaoa.circuit.depth, qaoa.circuit.gates, qaoa.circuit.two_qubit
    );

    println!(
        "\napproximation ratios — QAOA {:.3}, GW-best {:.3}",
        qaoa.best.value / exact.value,
        gw.best.value / exact.value
    );
}
