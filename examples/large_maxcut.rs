//! QAOA² on a graph far beyond the simulated device: divide a 300-node
//! instance into ≤ 10-qubit sub-problems, solve them with the hybrid
//! best-of-QAOA-and-GW rule, merge, and compare against GW on the full
//! graph — the Fig. 4 workflow as a library call.
//!
//! ```text
//! cargo run --release --example large_maxcut
//! ```

use qaoa2_suite::prelude::*;

fn main() {
    let g = generators::erdos_renyi(300, 0.1, generators::WeightKind::Uniform, 4);
    println!("graph: {} nodes, {} edges (device budget: 10 qubits)", g.num_nodes(), g.num_edges());

    let cfg = Qaoa2Config {
        max_qubits: 10,
        solver: SubSolver::Best {
            qaoa: QaoaConfig { layers: 3, ..QaoaConfig::default() },
            gw: GwConfig::default(),
        },
        // the paper keeps deeper recursion levels classical
        coarse_solver: SubSolver::Gw(GwConfig::default()),
        parallelism: Parallelism::Threads,
        seed: 3,
        ..Qaoa2Config::default()
    };
    let t0 = std::time::Instant::now();
    let res = qaoa2_solve(&g, &cfg).expect("valid configuration");
    println!("QAOA² cut value: {:.1} in {:.2?}", res.cut_value, t0.elapsed());
    for (i, level) in res.levels.iter().enumerate() {
        println!(
            "  level {}: {} nodes → {} sub-graphs (max {}), solved in {:.2?}, coarse {} nodes",
            i,
            level.graph_nodes,
            level.num_subgraphs,
            level.max_subgraph,
            level.solve_wall,
            level.coarse_nodes
        );
    }

    let gw = goemans_williamson(&g, &GwConfig::default());
    let rnd = randomized_partitioning(&g, 1, 5);
    println!("GW on the full graph: {:.1} (SDP bound {:.1})", gw.best.value, gw.sdp_bound);
    println!("random partition:     {:.1}", rnd.value);
    println!(
        "\nrelative to QAOA²: GW-full {:.3}, random {:.3} — the Fig. 4 ordering",
        gw.best.value / res.cut_value,
        rnd.value / res.cut_value
    );
}
