//! QAOA² on a graph far beyond the simulated device: divide a 300-node
//! instance into ≤ 10-qubit sub-problems, solve them with the hybrid
//! best-of-QAOA-and-GW rule, merge, and compare against GW on the full
//! graph — the Fig. 4 workflow as a library call.
//!
//! ```text
//! cargo run --release --example large_maxcut [-- OPTIONS]
//!
//!   --partition NAME     partition strategy: greedy-modularity (default),
//!                        balanced-chunks, bfs-grow, multilevel,
//!                        label-propagation, spectral, or auto
//!                        (per-instance lookahead selection)
//!   --schedule L0,L1,..  per-recursion-level strategy schedule; levels
//!                        past the list fall back to --partition
//!                        (e.g. --schedule multilevel,spectral --partition auto)
//!   --refine             enable boundary refinement (FM-style polish)
//!   --nodes N            graph size (default 300)
//!   --seed S             graph + solver seed (default 4 / 3)
//! ```

use qaoa2_suite::prelude::*;

struct Options {
    partition: PartitionStrategy,
    refine: RefineConfig,
    nodes: usize,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut partition = PartitionStrategy::default();
    let mut schedule: Option<Vec<PartitionStrategy>> = None;
    let mut refine = RefineConfig::default();
    let mut nodes = 300usize;
    let mut seed = 4u64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--partition" => {
                let v = it.next().ok_or("--partition needs a strategy name")?;
                partition =
                    PartitionStrategy::parse(v).ok_or_else(|| format!("unknown strategy `{v}`"))?;
            }
            "--schedule" => {
                let v = it.next().ok_or("--schedule needs a comma-separated list")?;
                let levels = v
                    .split(',')
                    .map(|s| {
                        PartitionStrategy::parse(s.trim())
                            .ok_or_else(|| format!("unknown strategy `{s}` in schedule"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                schedule = Some(levels);
            }
            "--refine" => refine = RefineConfig::full(),
            "--nodes" => {
                nodes = it.next().and_then(|v| v.parse().ok()).ok_or("--nodes needs an integer")?;
            }
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).ok_or("--seed needs an integer")?;
            }
            other => return Err(format!("unknown option `{other}` (see the module docs)")),
        }
    }
    // a schedule wraps the base strategy as its tail default
    if let Some(levels) = schedule {
        partition = PartitionStrategy::scheduled(PartitionSchedule::new(levels, partition));
    }
    Ok(Options { partition, refine, nodes, seed })
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("large_maxcut: {e}");
            std::process::exit(2);
        }
    };
    let g = generators::erdos_renyi(opts.nodes, 0.1, generators::WeightKind::Uniform, opts.seed);
    println!(
        "graph: {} nodes, {} edges (device budget: 10 qubits), partition {:?}",
        g.num_nodes(),
        g.num_edges(),
        opts.partition
    );

    let cfg = Qaoa2Config {
        max_qubits: 10,
        solver: SubSolver::Best {
            qaoa: QaoaConfig { layers: 3, ..QaoaConfig::default() },
            gw: GwConfig::default(),
        },
        // the paper keeps deeper recursion levels classical
        coarse_solver: SubSolver::Gw(GwConfig::default()),
        partition: opts.partition,
        refine: opts.refine,
        parallelism: Parallelism::Threads,
        seed: 3,
    };
    let t0 = std::time::Instant::now();
    let res = qaoa2_solve(&g, &cfg).expect("valid configuration");
    println!("QAOA² cut value: {:.1} in {:.2?}", res.cut_value, t0.elapsed());
    for (i, level) in res.levels.iter().enumerate() {
        println!(
            "  level {}: {} nodes → {} sub-graphs (max {}), strategy {} → {}, solved in {:.2?}, \
             coarse {} nodes",
            i,
            level.graph_nodes,
            level.num_subgraphs,
            level.max_subgraph,
            level.strategy_requested,
            level.strategy_effective,
            level.solve_wall,
            level.coarse_nodes
        );
    }

    let gw = goemans_williamson(&g, &GwConfig::default());
    let rnd = randomized_partitioning(&g, 1, 5);
    println!("GW on the full graph: {:.1} (SDP bound {:.1})", gw.best.value, gw.sdp_bound);
    println!("random partition:     {:.1}", rnd.value);
    println!(
        "\nrelative to QAOA²: GW-full {:.3}, random {:.3} — the Fig. 4 ordering",
        gw.best.value / res.cut_value,
        rnd.value / res.cut_value
    );
}
